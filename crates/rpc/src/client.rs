//! RPC clients: in-process and TCP, with parallel fan-out.

use crate::frame::{read_frame, write_frame, Request, Response, RpcError, Status};
use crate::server::ServerCore;
use crate::stats::RpcStats;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Converts a received response into the caller-facing result.
fn response_to_result(resp: Response) -> Result<Response, RpcError> {
    match resp.status {
        Status::Ok => Ok(resp),
        Status::Error => Err(RpcError::Application(
            String::from_utf8_lossy(&resp.body).into_owned(),
        )),
        Status::Overloaded => Err(RpcError::Overloaded),
    }
}

/// A handle for calling an [`InProcServer`](crate::server::InProcServer).
///
/// Cheap to clone; every clone shares the server's pool and stats.
#[derive(Clone)]
pub struct InProcClient {
    core: Arc<ServerCore>,
    seq: Arc<AtomicU64>,
}

impl std::fmt::Debug for InProcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcClient").finish_non_exhaustive()
    }
}

impl InProcClient {
    pub(crate) fn new(core: Arc<ServerCore>) -> Self {
        Self {
            core,
            seq: Arc::new(AtomicU64::new(1)),
        }
    }

    fn build_request(&self, method: &str, body: Vec<u8>) -> Request {
        let mut req = Request::new(method, body);
        req.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        req
    }

    fn call_inner(&self, req: Request, blocking: bool) -> Result<Response, RpcError> {
        // Serialize/deserialize even in-process: the RPC tax must be paid.
        let encoded = req.encode();
        self.core.stats.record_request(encoded.len());
        let req = Request::decode(&encoded)?;

        let (tx, rx) = crossbeam::channel::bounded::<Vec<u8>>(1);
        self.core.dispatch(req, blocking, move |resp| {
            let _ = tx.send(resp.encode());
        });
        match rx.recv() {
            Ok(encoded) => {
                let resp = Response::decode(&encoded)?;
                self.core.stats.record_response(
                    encoded.len(),
                    resp.status == Status::Ok,
                    resp.status == Status::Overloaded,
                );
                response_to_result(resp)
            }
            // The dispatch was shed (queue full) or the pool is gone; the
            // reply sender was dropped without sending.
            Err(_) => {
                self.core.stats.record_response(0, false, true);
                Err(RpcError::Overloaded)
            }
        }
    }

    /// Synchronous call; waits for queue space under load (closed loop).
    ///
    /// # Errors
    ///
    /// Returns [`RpcError::Application`] for handler-reported errors,
    /// [`RpcError::Overloaded`] if the server shut down mid-call.
    pub fn call(&self, method: &str, body: Vec<u8>) -> Result<Response, RpcError> {
        self.call_inner(self.build_request(method, body), true)
    }

    /// Synchronous call that is shed immediately when the server queue is
    /// full (open loop): overload becomes an [`RpcError::Overloaded`]
    /// instead of queueing delay.
    ///
    /// # Errors
    ///
    /// As [`InProcClient::call`], plus shed-on-full behavior.
    pub fn try_call(&self, method: &str, body: Vec<u8>) -> Result<Response, RpcError> {
        self.call_inner(self.build_request(method, body), false)
    }

    /// Issues `calls` in parallel (one thread per call, scoped), modeling
    /// the RPC fan-out of production request trees.
    pub fn fanout(&self, calls: Vec<(String, Vec<u8>)>) -> FanoutResult {
        let mut results: Vec<Option<Result<Response, RpcError>>> =
            (0..calls.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(calls.len());
            for (method, body) in calls {
                let client = self.clone();
                joins.push(scope.spawn(move || client.call(&method, body)));
            }
            for (slot, join) in results.iter_mut().zip(joins) {
                *slot = Some(join.join().unwrap_or(Err(RpcError::Disconnected)));
            }
        });
        FanoutResult {
            responses: results.into_iter().flatten().collect(),
        }
    }

    /// Shared transport counters.
    pub fn stats(&self) -> &RpcStats {
        &self.core.stats
    }
}

/// The gathered outcome of a parallel fan-out.
#[derive(Debug)]
pub struct FanoutResult {
    /// Per-call outcomes, in issue order.
    pub responses: Vec<Result<Response, RpcError>>,
}

impl FanoutResult {
    /// Number of successful calls.
    pub fn ok_count(&self) -> usize {
        self.responses.iter().filter(|r| r.is_ok()).count()
    }

    /// Whether every call succeeded.
    pub fn all_ok(&self) -> bool {
        self.ok_count() == self.responses.len()
    }

    /// Total bytes across successful response bodies.
    pub fn total_response_bytes(&self) -> usize {
        self.responses
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|r| r.body.len())
            .sum()
    }
}

/// A synchronous TCP RPC client (one outstanding call per connection, as
/// with classic Thrift sync clients; use several clients for parallelism).
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    seq: u64,
    stats: RpcStats,
}

impl std::fmt::Debug for TcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClient").field("seq", &self.seq).finish()
    }
}

impl TcpClient {
    /// Connects to a [`TcpServer`](crate::server::TcpServer).
    ///
    /// # Errors
    ///
    /// Returns the underlying connection error.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Self {
            reader,
            writer,
            seq: 1,
            stats: RpcStats::new(),
        })
    }

    /// Synchronous call over the connection.
    ///
    /// # Errors
    ///
    /// Returns I/O, wire, application, or overload errors.
    pub fn call(&mut self, method: &str, body: Vec<u8>) -> Result<Response, RpcError> {
        let mut req = Request::new(method, body);
        req.seq = self.seq;
        self.seq += 1;
        let payload = req.encode();
        self.stats.record_request(payload.len());
        write_frame(&mut self.writer, &payload)?;
        let frame = read_frame(&mut self.reader)?.ok_or(RpcError::Disconnected)?;
        let resp = Response::decode(&frame)?;
        self.stats.record_response(
            frame.len(),
            resp.status == Status::Ok,
            resp.status == Status::Overloaded,
        );
        response_to_result(resp)
    }

    /// This connection's counters.
    pub fn stats(&self) -> &RpcStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use crate::server::InProcServer;

    #[test]
    fn fanout_gathers_in_order() {
        let server = InProcServer::start(
            |req: &Request| Response::ok(req.body.clone()),
            PoolConfig::single_lane(4),
        );
        let client = server.client();
        let calls: Vec<(String, Vec<u8>)> =
            (0..10u8).map(|i| ("echo".to_owned(), vec![i])).collect();
        let result = client.fanout(calls);
        assert!(result.all_ok());
        assert_eq!(result.ok_count(), 10);
        assert_eq!(result.total_response_bytes(), 10);
        for (i, r) in result.responses.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().body, vec![i as u8]);
        }
        server.shutdown();
    }

    #[test]
    fn application_error_maps_to_rpc_error() {
        let server = InProcServer::start(
            |_req: &Request| Response::error("no such key"),
            PoolConfig::single_lane(1),
        );
        let client = server.client();
        match client.call("get", vec![]) {
            Err(RpcError::Application(m)) => assert_eq!(m, "no such key"),
            other => panic!("expected application error, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn stats_track_calls() {
        let server = InProcServer::start(
            |req: &Request| Response::ok(req.body.clone()),
            PoolConfig::single_lane(1),
        );
        let client = server.client();
        for _ in 0..5 {
            client.call("m", vec![0u8; 32]).unwrap();
        }
        assert_eq!(client.stats().requests(), 5);
        assert_eq!(client.stats().responses(), 5);
        assert!(client.stats().bytes_sent() > 5 * 32);
        assert_eq!(client.stats().error_rate(), 0.0);
        server.shutdown();
    }

    #[test]
    fn try_call_sheds_on_saturated_queue() {
        // One worker parked on a gate; depth-1 queue.
        let (gate_tx, gate_rx) = crossbeam::channel::bounded::<()>(0);
        let gate_rx = std::sync::Mutex::new(gate_rx);
        let server = InProcServer::start(
            move |req: &Request| {
                if req.method == "block" {
                    let _ = gate_rx.lock().unwrap().recv();
                }
                Response::ok(vec![])
            },
            PoolConfig::single_lane(1).with_queue_depth(1),
        );
        let client = server.client();
        // Occupy the worker.
        let blocker = {
            let client = client.clone();
            std::thread::spawn(move || client.call("block", vec![]))
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        // Fill the queue.
        let filler = {
            let client = client.clone();
            std::thread::spawn(move || client.call("x", vec![]))
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        // This one must shed.
        match client.try_call("x", vec![]) {
            Err(RpcError::Overloaded) => {}
            other => panic!("expected overload, got {other:?}"),
        }
        gate_tx.send(()).unwrap();
        blocker.join().unwrap().unwrap();
        filler.join().unwrap().unwrap();
        server.shutdown();
    }
}
