//! RPC clients: in-process and TCP, with parallel fan-out.

use crate::frame::{append_frame, read_frame, write_frame, Request, Response, RpcError, Status};
use crate::server::ServerCore;
use crate::stats::RpcStats;
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Maps a joined thread's panic payload to a typed, non-retryable error
/// carrying the panic message, so fan-out callers can distinguish a
/// crashed worker from a disconnect.
fn panic_to_error(payload: Box<dyn std::any::Any + Send>) -> RpcError {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_owned());
    RpcError::WorkerPanic(msg)
}

/// Converts a received response into the caller-facing result.
fn response_to_result(resp: Response) -> Result<Response, RpcError> {
    match resp.status {
        Status::Ok => Ok(resp),
        Status::Error => Err(RpcError::Application(
            String::from_utf8_lossy(&resp.body).into_owned(),
        )),
        Status::Overloaded => Err(RpcError::Overloaded),
        Status::DeadlineExceeded => Err(RpcError::DeadlineExceeded),
    }
}

/// A handle for calling an [`InProcServer`](crate::server::InProcServer).
///
/// Cheap to clone; every clone shares the server's pool and stats.
#[derive(Clone)]
pub struct InProcClient {
    core: Arc<ServerCore>,
    seq: Arc<AtomicU64>,
}

impl std::fmt::Debug for InProcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcClient").finish_non_exhaustive()
    }
}

impl InProcClient {
    pub(crate) fn new(core: Arc<ServerCore>) -> Self {
        Self {
            core,
            seq: Arc::new(AtomicU64::new(1)),
        }
    }

    fn build_request(&self, method: &str, body: Vec<u8>) -> Request {
        let mut req = Request::new(method, body);
        // ordering: seq only needs uniqueness, not ordering with other memory
        req.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        req
    }

    fn call_inner(&self, req: Request, blocking: bool) -> Result<Response, RpcError> {
        // Serialize/deserialize even in-process: the RPC tax must be paid.
        let encoded = req.encode();
        self.core.stats.record_request(encoded.len());
        let req = Request::decode(&encoded)?;

        let (tx, rx) = crossbeam::channel::bounded::<Vec<u8>>(1);
        self.core.dispatch(req, blocking, move |resp| {
            let _ = tx.send(resp.encode());
        });
        match rx.recv() {
            Ok(encoded) => {
                let resp = Response::decode(&encoded)?;
                self.core.stats.record_response(encoded.len(), resp.status);
                response_to_result(resp)
            }
            // The dispatch was shed (queue full) or the pool is gone; the
            // reply sender was dropped without sending.
            Err(_) => {
                self.core.stats.record_response(0, Status::Overloaded);
                Err(RpcError::Overloaded)
            }
        }
    }

    /// Synchronous call; waits for queue space under load (closed loop).
    ///
    /// # Errors
    ///
    /// Returns [`RpcError::Application`] for handler-reported errors,
    /// [`RpcError::Overloaded`] if the server shut down mid-call.
    pub fn call(&self, method: &str, body: Vec<u8>) -> Result<Response, RpcError> {
        self.call_inner(self.build_request(method, body), true)
    }

    /// Synchronous call that is shed immediately when the server queue is
    /// full (open loop): overload becomes an [`RpcError::Overloaded`]
    /// instead of queueing delay.
    ///
    /// # Errors
    ///
    /// As [`InProcClient::call`], plus shed-on-full behavior.
    pub fn try_call(&self, method: &str, body: Vec<u8>) -> Result<Response, RpcError> {
        self.call_inner(self.build_request(method, body), false)
    }

    /// As [`InProcClient::call`], with a deadline budget carried in the
    /// request frame. The server sheds the request once the budget is
    /// spent — before queueing, at dequeue, and at handler entry.
    ///
    /// # Errors
    ///
    /// As [`InProcClient::call`], plus [`RpcError::DeadlineExceeded`]
    /// when the server shed the expired request.
    pub fn call_with_deadline(
        &self,
        method: &str,
        body: Vec<u8>,
        budget: Duration,
    ) -> Result<Response, RpcError> {
        let req = self.build_request(method, body).with_deadline(budget);
        self.call_inner(req, true)
    }

    /// As [`InProcClient::try_call`] (shed-on-full), with a deadline
    /// budget carried in the request frame.
    ///
    /// # Errors
    ///
    /// As [`InProcClient::try_call`], plus
    /// [`RpcError::DeadlineExceeded`].
    pub fn try_call_with_deadline(
        &self,
        method: &str,
        body: Vec<u8>,
        budget: Duration,
    ) -> Result<Response, RpcError> {
        let req = self.build_request(method, body).with_deadline(budget);
        self.call_inner(req, false)
    }

    /// Issues a pipelined batch of same-method calls: all requests enter
    /// the dispatch queue before any reply is awaited, so the batch keeps
    /// the pool busy without one thread per call. Results come back in
    /// issue order regardless of completion order (matched by correlation
    /// id).
    pub fn call_many(&self, method: &str, bodies: Vec<Vec<u8>>) -> Vec<Result<Response, RpcError>> {
        self.call_many_inner(method, bodies, None)
    }

    /// As [`InProcClient::call_many`], with a per-request deadline budget:
    /// each request in the burst is shed individually once its own budget
    /// expires.
    pub fn call_many_with_deadline(
        &self,
        method: &str,
        bodies: Vec<Vec<u8>>,
        budget: Duration,
    ) -> Vec<Result<Response, RpcError>> {
        self.call_many_inner(method, bodies, Some(budget))
    }

    fn call_many_inner(
        &self,
        method: &str,
        bodies: Vec<Vec<u8>>,
        budget: Option<Duration>,
    ) -> Vec<Result<Response, RpcError>> {
        let n = bodies.len();
        let mut results: Vec<Option<Result<Response, RpcError>>> = (0..n).map(|_| None).collect();
        let mut slot_of: HashMap<u64, usize> = HashMap::with_capacity(n);
        let (tx, rx) = crossbeam::channel::bounded::<(u64, Vec<u8>)>(n.max(1));
        let mut dispatched = 0usize;
        for (idx, body) in bodies.into_iter().enumerate() {
            let mut req = self.build_request(method, body);
            req.corr = req.seq;
            if let Some(b) = budget {
                req = req.with_deadline(b);
            }
            // Serialize/deserialize even in-process: the RPC tax is paid
            // per request, batched or not.
            let encoded = req.encode();
            self.core.stats.record_request(encoded.len());
            let req = match Request::decode(&encoded) {
                Ok(r) => r,
                Err(e) => {
                    results[idx] = Some(Err(RpcError::Wire(e)));
                    continue;
                }
            };
            slot_of.insert(req.corr, idx);
            let tx = tx.clone();
            // The guard rides in the reply closure, so depth accounting
            // survives sheds (a dropped closure still drops the guard).
            let guard = self.core.pipeline.track();
            self.core.dispatch(req, true, move |resp| {
                let _guard = guard;
                let _ = tx.send((resp.corr, resp.encode()));
            });
            dispatched += 1;
        }
        drop(tx);
        for _ in 0..dispatched {
            // A recv error means every remaining reply closure was dropped
            // unsent (shed or shutdown); the unfilled slots below cover it.
            let Ok((corr, encoded)) = rx.recv() else {
                break;
            };
            let outcome = match Response::decode(&encoded) {
                Ok(resp) => {
                    self.core.stats.record_response(encoded.len(), resp.status);
                    response_to_result(resp)
                }
                Err(e) => Err(RpcError::Wire(e)),
            };
            if let Some(idx) = slot_of.remove(&corr) {
                results[idx] = Some(outcome);
            }
        }
        results
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    // Shed without a reply: same overload semantics as a
                    // dropped single-call reply channel.
                    self.core.stats.record_response(0, Status::Overloaded);
                    Err(RpcError::Overloaded)
                })
            })
            .collect()
    }

    /// Issues `calls` in parallel (one thread per call, scoped), modeling
    /// the RPC fan-out of production request trees.
    pub fn fanout(&self, calls: Vec<(String, Vec<u8>)>) -> FanoutResult {
        let mut results: Vec<Option<Result<Response, RpcError>>> =
            (0..calls.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(calls.len());
            for (method, body) in calls {
                let client = self.clone();
                joins.push(scope.spawn(move || client.call(&method, body)));
            }
            for (slot, join) in results.iter_mut().zip(joins) {
                // A panicking worker is a distinct, non-retryable failure:
                // surface the panic payload instead of folding it into
                // `Disconnected` (which retry policy would happily retry).
                *slot = Some(join.join().unwrap_or_else(|p| Err(panic_to_error(p))));
            }
        });
        FanoutResult {
            responses: results.into_iter().flatten().collect(),
        }
    }

    /// Shared transport counters.
    pub fn stats(&self) -> &RpcStats {
        &self.core.stats
    }

    /// The server's telemetry registry (shared with the server handle):
    /// resilience wrappers register their counters here so one snapshot
    /// covers transport, pool, and resilience activity.
    pub fn telemetry(&self) -> &dcperf_telemetry::Telemetry {
        &self.core.telemetry
    }
}

/// The gathered outcome of a parallel fan-out.
#[derive(Debug)]
pub struct FanoutResult {
    /// Per-call outcomes, in issue order.
    pub responses: Vec<Result<Response, RpcError>>,
}

impl FanoutResult {
    /// Number of successful calls.
    pub fn ok_count(&self) -> usize {
        self.responses.iter().filter(|r| r.is_ok()).count()
    }

    /// Whether every call succeeded.
    pub fn all_ok(&self) -> bool {
        self.ok_count() == self.responses.len()
    }

    /// Total bytes across successful response bodies.
    pub fn total_response_bytes(&self) -> usize {
        self.responses
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|r| r.body.len())
            .sum()
    }
}

/// Maps transport I/O errors to typed RPC errors: read timeouts become
/// [`RpcError::Timeout`] so retry policy can treat them distinctly.
fn map_io(e: std::io::Error) -> RpcError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RpcError::Timeout,
        _ => RpcError::Io(e),
    }
}

/// A synchronous TCP RPC client. [`TcpClient::call`] keeps one
/// outstanding call per connection (classic Thrift sync behavior);
/// [`TcpClient::call_many`] pipelines a batch through an in-flight window
/// so one connection does the work of N single-call clients.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    seq: u64,
    window: usize,
    stats: RpcStats,
}

impl std::fmt::Debug for TcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClient")
            .field("seq", &self.seq)
            .field("window", &self.window)
            .finish()
    }
}

/// Default pipelined in-flight window for [`TcpClient::call_many`].
pub const DEFAULT_CLIENT_WINDOW: usize = 32;

impl TcpClient {
    /// Connects to a [`TcpServer`](crate::server::TcpServer).
    ///
    /// # Errors
    ///
    /// Returns the underlying connection error.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Self {
            reader,
            writer,
            seq: 1,
            window: DEFAULT_CLIENT_WINDOW,
            stats: RpcStats::new(),
        })
    }

    /// Sets the pipelined in-flight window used by
    /// [`TcpClient::call_many`] (builder style; clamped to ≥ 1, where 1
    /// degenerates to sequential one-request-per-turn calls).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Synchronous call over the connection.
    ///
    /// # Errors
    ///
    /// Returns I/O, wire, application, or overload errors.
    pub fn call(&mut self, method: &str, body: Vec<u8>) -> Result<Response, RpcError> {
        self.call_request(Request::new(method, body))
    }

    /// Synchronous call carrying a deadline budget in the request frame.
    /// The client also arms a matching socket read timeout, so a server
    /// that never replies surfaces as [`RpcError::Timeout`] rather than a
    /// hang.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::call`], plus [`RpcError::DeadlineExceeded`] (server
    /// shed) and [`RpcError::Timeout`] (no reply within ~the budget).
    pub fn call_with_deadline(
        &mut self,
        method: &str,
        body: Vec<u8>,
        budget: Duration,
    ) -> Result<Response, RpcError> {
        // Give the reply a grace window past the server-side budget so an
        // in-flight shed response is read rather than raced.
        let read_timeout = budget + budget / 2 + Duration::from_millis(50);
        let _ = self.reader.get_ref().set_read_timeout(Some(read_timeout));
        let result = self.call_request(Request::new(method, body).with_deadline(budget));
        let _ = self.reader.get_ref().set_read_timeout(None);
        result
    }

    fn call_request(&mut self, mut req: Request) -> Result<Response, RpcError> {
        req.seq = self.seq;
        // corr == seq keeps correlation intact against legacy servers,
        // whose responses decode with `corr` falling back to the echoed
        // sequence number.
        req.corr = self.seq;
        self.seq += 1;
        let payload = req.encode();
        self.stats.record_request(payload.len());
        write_frame(&mut self.writer, &payload).map_err(map_io)?;
        let frame = match read_frame(&mut self.reader) {
            Ok(Some(f)) => f,
            Ok(None) => return Err(RpcError::Disconnected),
            Err(e) => return Err(map_io(e)),
        };
        let resp = Response::decode(&frame)?;
        self.stats.record_response(frame.len(), resp.status);
        if resp.corr != req.corr {
            return Err(RpcError::CorrelationMismatch { got: resp.corr });
        }
        response_to_result(resp)
    }

    /// Issues a pipelined batch of same-method calls over this single
    /// connection: up to [`TcpClient::with_window`] requests ride the wire
    /// concurrently, and the server may complete them out of order.
    /// Results come back in issue order (matched by correlation id). On a
    /// transport failure the whole remaining batch fails with duplicates
    /// of that error — a pipelined connection dies as a unit.
    pub fn call_many(
        &mut self,
        method: &str,
        bodies: Vec<Vec<u8>>,
    ) -> Vec<Result<Response, RpcError>> {
        self.call_many_inner(method, bodies, None)
    }

    /// As [`TcpClient::call_many`], carrying a per-request deadline budget
    /// and arming a read timeout sized to the budget so a silent server
    /// surfaces as [`RpcError::Timeout`].
    pub fn call_many_with_deadline(
        &mut self,
        method: &str,
        bodies: Vec<Vec<u8>>,
        budget: Duration,
    ) -> Vec<Result<Response, RpcError>> {
        // Grace window past the server-side budget, as in
        // `call_with_deadline`.
        let read_timeout = budget + budget / 2 + Duration::from_millis(50);
        let _ = self.reader.get_ref().set_read_timeout(Some(read_timeout));
        let results = self.call_many_inner(method, bodies, Some(budget));
        let _ = self.reader.get_ref().set_read_timeout(None);
        results
    }

    fn call_many_inner(
        &mut self,
        method: &str,
        bodies: Vec<Vec<u8>>,
        budget: Option<Duration>,
    ) -> Vec<Result<Response, RpcError>> {
        let n = bodies.len();
        let mut results: Vec<Option<Result<Response, RpcError>>> = (0..n).map(|_| None).collect();
        let mut slot_of: HashMap<u64, usize> = HashMap::with_capacity(self.window);
        let mut pending: VecDeque<(usize, Vec<u8>)> = bodies.into_iter().enumerate().collect();
        let window = self.window.max(1);

        let failure: Option<RpcError> = 'run: {
            loop {
                // Top up the window: encode a burst of frames and push it
                // with one buffered write + flush.
                if !pending.is_empty() && slot_of.len() < window {
                    let mut burst = Vec::new();
                    while slot_of.len() < window {
                        let Some((idx, body)) = pending.pop_front() else {
                            break;
                        };
                        let mut req = Request::new(method, body);
                        if let Some(b) = budget {
                            req = req.with_deadline(b);
                        }
                        req.seq = self.seq;
                        req.corr = self.seq;
                        self.seq += 1;
                        let payload = req.encode();
                        self.stats.record_request(payload.len());
                        if let Err(e) = append_frame(&mut burst, &payload) {
                            break 'run Some(map_io(e));
                        }
                        slot_of.insert(req.corr, idx);
                    }
                    if let Err(e) = self
                        .writer
                        .write_all(&burst)
                        .and_then(|()| self.writer.flush())
                    {
                        break 'run Some(map_io(e));
                    }
                }
                if slot_of.is_empty() {
                    break 'run None;
                }
                // Await any one completion; the server may answer in any
                // order, so route by correlation id.
                let frame = match read_frame(&mut self.reader) {
                    Ok(Some(f)) => f,
                    Ok(None) => break 'run Some(RpcError::Disconnected),
                    Err(e) => break 'run Some(map_io(e)),
                };
                let resp = match Response::decode(&frame) {
                    Ok(r) => r,
                    Err(e) => break 'run Some(RpcError::Wire(e)),
                };
                self.stats.record_response(frame.len(), resp.status);
                let Some(idx) = slot_of.remove(&resp.corr) else {
                    break 'run Some(RpcError::CorrelationMismatch { got: resp.corr });
                };
                results[idx] = Some(response_to_result(resp));
            }
        };
        if let Some(err) = failure {
            for slot in results.iter_mut() {
                if slot.is_none() {
                    *slot = Some(Err(err.duplicate()));
                }
            }
        }
        results
            .into_iter()
            .map(|slot| slot.unwrap_or(Err(RpcError::Disconnected)))
            .collect()
    }

    /// This connection's counters.
    pub fn stats(&self) -> &RpcStats {
        &self.stats
    }
}

/// A fixed-size pool of pipelined TCP connections.
///
/// Single calls fan out round-robin across the pool; batched
/// [`TcpClientPool::call_many`] sends the whole burst down *one*
/// pipelined connection — the point of multiplexing is that one
/// connection replaces N pool slots.
pub struct TcpClientPool {
    conns: Vec<Mutex<TcpClient>>,
    cursor: AtomicUsize,
}

impl std::fmt::Debug for TcpClientPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClientPool")
            .field("size", &self.conns.len())
            .finish()
    }
}

impl TcpClientPool {
    /// Opens `size` connections (clamped to ≥ 1) to `addr`, each with the
    /// pipelined window `window`.
    ///
    /// # Errors
    ///
    /// Returns the first connection error.
    pub fn connect(addr: SocketAddr, size: usize, window: usize) -> std::io::Result<Self> {
        let mut conns = Vec::with_capacity(size.max(1));
        for _ in 0..size.max(1) {
            conns.push(Mutex::new(TcpClient::connect(addr)?.with_window(window)));
        }
        Ok(Self {
            conns,
            cursor: AtomicUsize::new(0),
        })
    }

    /// Number of pooled connections.
    pub fn size(&self) -> usize {
        self.conns.len()
    }

    fn next(&self) -> &Mutex<TcpClient> {
        // ordering: round-robin cursor only needs per-call uniqueness, not
        // ordering with other memory
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) % self.conns.len();
        &self.conns[i]
    }

    fn lock(conn: &Mutex<TcpClient>) -> std::sync::MutexGuard<'_, TcpClient> {
        conn.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Single call on the next connection, round-robin.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::call`].
    pub fn call(&self, method: &str, body: Vec<u8>) -> Result<Response, RpcError> {
        Self::lock(self.next()).call(method, body)
    }

    /// Single deadline-carrying call on the next connection, round-robin.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::call_with_deadline`].
    pub fn call_with_deadline(
        &self,
        method: &str,
        body: Vec<u8>,
        budget: Duration,
    ) -> Result<Response, RpcError> {
        Self::lock(self.next()).call_with_deadline(method, body, budget)
    }

    /// Pipelines the whole batch down one connection (round-robin pick).
    pub fn call_many(&self, method: &str, bodies: Vec<Vec<u8>>) -> Vec<Result<Response, RpcError>> {
        Self::lock(self.next()).call_many(method, bodies)
    }

    /// As [`TcpClientPool::call_many`] with a per-request deadline budget.
    pub fn call_many_with_deadline(
        &self,
        method: &str,
        bodies: Vec<Vec<u8>>,
        budget: Duration,
    ) -> Vec<Result<Response, RpcError>> {
        Self::lock(self.next()).call_many_with_deadline(method, bodies, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use crate::server::InProcServer;

    #[test]
    fn fanout_gathers_in_order() {
        let server = InProcServer::start(
            |req: &Request| Response::ok(req.body.clone()),
            PoolConfig::single_lane(4),
        );
        let client = server.client();
        let calls: Vec<(String, Vec<u8>)> =
            (0..10u8).map(|i| ("echo".to_owned(), vec![i])).collect();
        let result = client.fanout(calls);
        assert!(result.all_ok());
        assert_eq!(result.ok_count(), 10);
        assert_eq!(result.total_response_bytes(), 10);
        for (i, r) in result.responses.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().body, vec![i as u8]);
        }
        server.shutdown();
    }

    #[test]
    fn fanout_surfaces_worker_panics_as_typed_errors() {
        // The join-side mapping fan-out uses for a crashed worker thread:
        // panic payloads (both &str and String) become WorkerPanic with
        // the message preserved, and are never classified retryable.
        let from_str = std::thread::spawn(|| panic!("worker exploded"))
            .join()
            .map_err(panic_to_error)
            .unwrap_err();
        match &from_str {
            RpcError::WorkerPanic(msg) => assert!(msg.contains("worker exploded")),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        assert!(!from_str.is_retryable());

        let boom = "formatted {}".to_owned();
        let from_string = std::thread::spawn(move || std::panic::panic_any(boom))
            .join()
            .map_err(panic_to_error)
            .unwrap_err();
        match from_string {
            RpcError::WorkerPanic(msg) => assert_eq!(msg, "formatted {}"),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn application_error_maps_to_rpc_error() {
        let server = InProcServer::start(
            |_req: &Request| Response::error("no such key"),
            PoolConfig::single_lane(1),
        );
        let client = server.client();
        match client.call("get", vec![]) {
            Err(RpcError::Application(m)) => assert_eq!(m, "no such key"),
            other => panic!("expected application error, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn stats_track_calls() {
        let server = InProcServer::start(
            |req: &Request| Response::ok(req.body.clone()),
            PoolConfig::single_lane(1),
        );
        let client = server.client();
        for _ in 0..5 {
            client.call("m", vec![0u8; 32]).unwrap();
        }
        assert_eq!(client.stats().requests(), 5);
        assert_eq!(client.stats().responses(), 5);
        assert!(client.stats().bytes_sent() > 5 * 32);
        assert_eq!(client.stats().error_rate(), 0.0);
        server.shutdown();
    }

    #[test]
    fn try_call_sheds_on_saturated_queue() {
        // One worker parked on a gate; depth-1 queue.
        let (gate_tx, gate_rx) = crossbeam::channel::bounded::<()>(0);
        let gate_rx = std::sync::Mutex::new(gate_rx);
        let server = InProcServer::start(
            move |req: &Request| {
                if req.method == "block" {
                    let _ = gate_rx.lock().unwrap().recv();
                }
                Response::ok(vec![])
            },
            PoolConfig::single_lane(1).with_queue_depth(1),
        );
        let client = server.client();
        // Occupy the worker.
        let blocker = {
            let client = client.clone();
            std::thread::spawn(move || client.call("block", vec![]))
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        // Fill the queue.
        let filler = {
            let client = client.clone();
            std::thread::spawn(move || client.call("x", vec![]))
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        // This one must shed.
        match client.try_call("x", vec![]) {
            Err(RpcError::Overloaded) => {}
            other => panic!("expected overload, got {other:?}"),
        }
        gate_tx.send(()).unwrap();
        blocker.join().unwrap().unwrap();
        filler.join().unwrap().unwrap();
        server.shutdown();
    }
}
