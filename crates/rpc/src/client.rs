//! RPC clients: in-process and TCP, with parallel fan-out.

use crate::frame::{read_frame, write_frame, Request, Response, RpcError, Status};
use crate::server::ServerCore;
use crate::stats::RpcStats;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maps a joined thread's panic payload to a typed, non-retryable error
/// carrying the panic message, so fan-out callers can distinguish a
/// crashed worker from a disconnect.
fn panic_to_error(payload: Box<dyn std::any::Any + Send>) -> RpcError {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_owned());
    RpcError::WorkerPanic(msg)
}

/// Converts a received response into the caller-facing result.
fn response_to_result(resp: Response) -> Result<Response, RpcError> {
    match resp.status {
        Status::Ok => Ok(resp),
        Status::Error => Err(RpcError::Application(
            String::from_utf8_lossy(&resp.body).into_owned(),
        )),
        Status::Overloaded => Err(RpcError::Overloaded),
        Status::DeadlineExceeded => Err(RpcError::DeadlineExceeded),
    }
}

/// A handle for calling an [`InProcServer`](crate::server::InProcServer).
///
/// Cheap to clone; every clone shares the server's pool and stats.
#[derive(Clone)]
pub struct InProcClient {
    core: Arc<ServerCore>,
    seq: Arc<AtomicU64>,
}

impl std::fmt::Debug for InProcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcClient").finish_non_exhaustive()
    }
}

impl InProcClient {
    pub(crate) fn new(core: Arc<ServerCore>) -> Self {
        Self {
            core,
            seq: Arc::new(AtomicU64::new(1)),
        }
    }

    fn build_request(&self, method: &str, body: Vec<u8>) -> Request {
        let mut req = Request::new(method, body);
        // ordering: seq only needs uniqueness, not ordering with other memory
        req.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        req
    }

    fn call_inner(&self, req: Request, blocking: bool) -> Result<Response, RpcError> {
        // Serialize/deserialize even in-process: the RPC tax must be paid.
        let encoded = req.encode();
        self.core.stats.record_request(encoded.len());
        let req = Request::decode(&encoded)?;

        let (tx, rx) = crossbeam::channel::bounded::<Vec<u8>>(1);
        self.core.dispatch(req, blocking, move |resp| {
            let _ = tx.send(resp.encode());
        });
        match rx.recv() {
            Ok(encoded) => {
                let resp = Response::decode(&encoded)?;
                self.core.stats.record_response(encoded.len(), resp.status);
                response_to_result(resp)
            }
            // The dispatch was shed (queue full) or the pool is gone; the
            // reply sender was dropped without sending.
            Err(_) => {
                self.core.stats.record_response(0, Status::Overloaded);
                Err(RpcError::Overloaded)
            }
        }
    }

    /// Synchronous call; waits for queue space under load (closed loop).
    ///
    /// # Errors
    ///
    /// Returns [`RpcError::Application`] for handler-reported errors,
    /// [`RpcError::Overloaded`] if the server shut down mid-call.
    pub fn call(&self, method: &str, body: Vec<u8>) -> Result<Response, RpcError> {
        self.call_inner(self.build_request(method, body), true)
    }

    /// Synchronous call that is shed immediately when the server queue is
    /// full (open loop): overload becomes an [`RpcError::Overloaded`]
    /// instead of queueing delay.
    ///
    /// # Errors
    ///
    /// As [`InProcClient::call`], plus shed-on-full behavior.
    pub fn try_call(&self, method: &str, body: Vec<u8>) -> Result<Response, RpcError> {
        self.call_inner(self.build_request(method, body), false)
    }

    /// As [`InProcClient::call`], with a deadline budget carried in the
    /// request frame. The server sheds the request once the budget is
    /// spent — before queueing, at dequeue, and at handler entry.
    ///
    /// # Errors
    ///
    /// As [`InProcClient::call`], plus [`RpcError::DeadlineExceeded`]
    /// when the server shed the expired request.
    pub fn call_with_deadline(
        &self,
        method: &str,
        body: Vec<u8>,
        budget: Duration,
    ) -> Result<Response, RpcError> {
        let req = self.build_request(method, body).with_deadline(budget);
        self.call_inner(req, true)
    }

    /// As [`InProcClient::try_call`] (shed-on-full), with a deadline
    /// budget carried in the request frame.
    ///
    /// # Errors
    ///
    /// As [`InProcClient::try_call`], plus
    /// [`RpcError::DeadlineExceeded`].
    pub fn try_call_with_deadline(
        &self,
        method: &str,
        body: Vec<u8>,
        budget: Duration,
    ) -> Result<Response, RpcError> {
        let req = self.build_request(method, body).with_deadline(budget);
        self.call_inner(req, false)
    }

    /// Issues `calls` in parallel (one thread per call, scoped), modeling
    /// the RPC fan-out of production request trees.
    pub fn fanout(&self, calls: Vec<(String, Vec<u8>)>) -> FanoutResult {
        let mut results: Vec<Option<Result<Response, RpcError>>> =
            (0..calls.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(calls.len());
            for (method, body) in calls {
                let client = self.clone();
                joins.push(scope.spawn(move || client.call(&method, body)));
            }
            for (slot, join) in results.iter_mut().zip(joins) {
                // A panicking worker is a distinct, non-retryable failure:
                // surface the panic payload instead of folding it into
                // `Disconnected` (which retry policy would happily retry).
                *slot = Some(join.join().unwrap_or_else(|p| Err(panic_to_error(p))));
            }
        });
        FanoutResult {
            responses: results.into_iter().flatten().collect(),
        }
    }

    /// Shared transport counters.
    pub fn stats(&self) -> &RpcStats {
        &self.core.stats
    }

    /// The server's telemetry registry (shared with the server handle):
    /// resilience wrappers register their counters here so one snapshot
    /// covers transport, pool, and resilience activity.
    pub fn telemetry(&self) -> &dcperf_telemetry::Telemetry {
        &self.core.telemetry
    }
}

/// The gathered outcome of a parallel fan-out.
#[derive(Debug)]
pub struct FanoutResult {
    /// Per-call outcomes, in issue order.
    pub responses: Vec<Result<Response, RpcError>>,
}

impl FanoutResult {
    /// Number of successful calls.
    pub fn ok_count(&self) -> usize {
        self.responses.iter().filter(|r| r.is_ok()).count()
    }

    /// Whether every call succeeded.
    pub fn all_ok(&self) -> bool {
        self.ok_count() == self.responses.len()
    }

    /// Total bytes across successful response bodies.
    pub fn total_response_bytes(&self) -> usize {
        self.responses
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|r| r.body.len())
            .sum()
    }
}

/// Maps transport I/O errors to typed RPC errors: read timeouts become
/// [`RpcError::Timeout`] so retry policy can treat them distinctly.
fn map_io(e: std::io::Error) -> RpcError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RpcError::Timeout,
        _ => RpcError::Io(e),
    }
}

/// A synchronous TCP RPC client (one outstanding call per connection, as
/// with classic Thrift sync clients; use several clients for parallelism).
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    seq: u64,
    stats: RpcStats,
}

impl std::fmt::Debug for TcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClient").field("seq", &self.seq).finish()
    }
}

impl TcpClient {
    /// Connects to a [`TcpServer`](crate::server::TcpServer).
    ///
    /// # Errors
    ///
    /// Returns the underlying connection error.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Self {
            reader,
            writer,
            seq: 1,
            stats: RpcStats::new(),
        })
    }

    /// Synchronous call over the connection.
    ///
    /// # Errors
    ///
    /// Returns I/O, wire, application, or overload errors.
    pub fn call(&mut self, method: &str, body: Vec<u8>) -> Result<Response, RpcError> {
        self.call_request(Request::new(method, body))
    }

    /// Synchronous call carrying a deadline budget in the request frame.
    /// The client also arms a matching socket read timeout, so a server
    /// that never replies surfaces as [`RpcError::Timeout`] rather than a
    /// hang.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::call`], plus [`RpcError::DeadlineExceeded`] (server
    /// shed) and [`RpcError::Timeout`] (no reply within ~the budget).
    pub fn call_with_deadline(
        &mut self,
        method: &str,
        body: Vec<u8>,
        budget: Duration,
    ) -> Result<Response, RpcError> {
        // Give the reply a grace window past the server-side budget so an
        // in-flight shed response is read rather than raced.
        let read_timeout = budget + budget / 2 + Duration::from_millis(50);
        let _ = self.reader.get_ref().set_read_timeout(Some(read_timeout));
        let result = self.call_request(Request::new(method, body).with_deadline(budget));
        let _ = self.reader.get_ref().set_read_timeout(None);
        result
    }

    fn call_request(&mut self, mut req: Request) -> Result<Response, RpcError> {
        req.seq = self.seq;
        self.seq += 1;
        let payload = req.encode();
        self.stats.record_request(payload.len());
        write_frame(&mut self.writer, &payload).map_err(map_io)?;
        let frame = match read_frame(&mut self.reader) {
            Ok(Some(f)) => f,
            Ok(None) => return Err(RpcError::Disconnected),
            Err(e) => return Err(map_io(e)),
        };
        let resp = Response::decode(&frame)?;
        self.stats.record_response(frame.len(), resp.status);
        response_to_result(resp)
    }

    /// This connection's counters.
    pub fn stats(&self) -> &RpcStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use crate::server::InProcServer;

    #[test]
    fn fanout_gathers_in_order() {
        let server = InProcServer::start(
            |req: &Request| Response::ok(req.body.clone()),
            PoolConfig::single_lane(4),
        );
        let client = server.client();
        let calls: Vec<(String, Vec<u8>)> =
            (0..10u8).map(|i| ("echo".to_owned(), vec![i])).collect();
        let result = client.fanout(calls);
        assert!(result.all_ok());
        assert_eq!(result.ok_count(), 10);
        assert_eq!(result.total_response_bytes(), 10);
        for (i, r) in result.responses.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().body, vec![i as u8]);
        }
        server.shutdown();
    }

    #[test]
    fn fanout_surfaces_worker_panics_as_typed_errors() {
        // The join-side mapping fan-out uses for a crashed worker thread:
        // panic payloads (both &str and String) become WorkerPanic with
        // the message preserved, and are never classified retryable.
        let from_str = std::thread::spawn(|| panic!("worker exploded"))
            .join()
            .map_err(panic_to_error)
            .unwrap_err();
        match &from_str {
            RpcError::WorkerPanic(msg) => assert!(msg.contains("worker exploded")),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        assert!(!from_str.is_retryable());

        let boom = "formatted {}".to_owned();
        let from_string = std::thread::spawn(move || std::panic::panic_any(boom))
            .join()
            .map_err(panic_to_error)
            .unwrap_err();
        match from_string {
            RpcError::WorkerPanic(msg) => assert_eq!(msg, "formatted {}"),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn application_error_maps_to_rpc_error() {
        let server = InProcServer::start(
            |_req: &Request| Response::error("no such key"),
            PoolConfig::single_lane(1),
        );
        let client = server.client();
        match client.call("get", vec![]) {
            Err(RpcError::Application(m)) => assert_eq!(m, "no such key"),
            other => panic!("expected application error, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn stats_track_calls() {
        let server = InProcServer::start(
            |req: &Request| Response::ok(req.body.clone()),
            PoolConfig::single_lane(1),
        );
        let client = server.client();
        for _ in 0..5 {
            client.call("m", vec![0u8; 32]).unwrap();
        }
        assert_eq!(client.stats().requests(), 5);
        assert_eq!(client.stats().responses(), 5);
        assert!(client.stats().bytes_sent() > 5 * 32);
        assert_eq!(client.stats().error_rate(), 0.0);
        server.shutdown();
    }

    #[test]
    fn try_call_sheds_on_saturated_queue() {
        // One worker parked on a gate; depth-1 queue.
        let (gate_tx, gate_rx) = crossbeam::channel::bounded::<()>(0);
        let gate_rx = std::sync::Mutex::new(gate_rx);
        let server = InProcServer::start(
            move |req: &Request| {
                if req.method == "block" {
                    let _ = gate_rx.lock().unwrap().recv();
                }
                Response::ok(vec![])
            },
            PoolConfig::single_lane(1).with_queue_depth(1),
        );
        let client = server.client();
        // Occupy the worker.
        let blocker = {
            let client = client.clone();
            std::thread::spawn(move || client.call("block", vec![]))
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        // Fill the queue.
        let filler = {
            let client = client.clone();
            std::thread::spawn(move || client.call("x", vec![]))
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        // This one must shed.
        match client.try_call("x", vec![]) {
            Err(RpcError::Overloaded) => {}
            other => panic!("expected overload, got {other:?}"),
        }
        gate_tx.send(()).unwrap();
        blocker.join().unwrap().unwrap();
        filler.join().unwrap().unwrap();
        server.shutdown();
    }
}
