//! Transport-level counters, recorded through the unified telemetry
//! layer.

use crate::frame::Status;
use dcperf_telemetry::{metrics, Counter, Telemetry};
use std::sync::Arc;

/// Byte and message counters shared between a transport's endpoints.
///
/// All counters are monotonically increasing and safe to read while the
/// transport is live. They live in a [`Telemetry`] registry (namespace
/// `rpc.*` by default); this struct is a set of pre-resolved handles plus
/// derived-rate helpers.
#[derive(Debug)]
pub struct RpcStats {
    requests: Arc<Counter>,
    responses: Arc<Counter>,
    errors: Arc<Counter>,
    shed: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    deadline_shed: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    bytes_received: Arc<Counter>,
}

impl RpcStats {
    /// Creates zeroed counters in a private registry.
    pub fn new() -> Self {
        Self::with_telemetry(&Telemetry::new(), metrics::PREFIX_RPC)
    }

    /// Registers the counters under `<prefix>.*` in `telemetry`.
    pub fn with_telemetry(telemetry: &Telemetry, prefix: &str) -> Self {
        let counter = |s| telemetry.counter(&metrics::scoped(prefix, s));
        Self {
            requests: counter(metrics::suffix::REQUESTS),
            responses: counter(metrics::suffix::RESPONSES),
            errors: counter(metrics::suffix::ERRORS),
            shed: counter(metrics::suffix::SHED),
            deadline_exceeded: counter(metrics::suffix::DEADLINE_EXCEEDED),
            deadline_shed: counter(metrics::suffix::DEADLINE_SHED),
            bytes_sent: counter(metrics::suffix::BYTES_SENT),
            bytes_received: counter(metrics::suffix::BYTES_RECEIVED),
        }
    }

    pub(crate) fn record_request(&self, bytes: usize) {
        self.requests.inc();
        self.bytes_sent.add(bytes as u64);
    }

    pub(crate) fn record_response(&self, bytes: usize, status: Status) {
        self.responses.inc();
        self.bytes_received.add(bytes as u64);
        match status {
            Status::Ok => {}
            Status::Error => self.errors.inc(),
            Status::Overloaded => self.shed.inc(),
            Status::DeadlineExceeded => self.deadline_exceeded.inc(),
        }
    }

    /// Counts a request the server shed because its deadline had already
    /// expired at dequeue or handler entry (server-side view; the
    /// client-side view is [`RpcStats::deadline_exceeded`]).
    pub(crate) fn record_deadline_shed(&self) {
        self.deadline_shed.inc();
    }

    /// Requests sent.
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Responses received.
    pub fn responses(&self) -> u64 {
        self.responses.get()
    }

    /// Application-error responses received.
    pub fn errors(&self) -> u64 {
        self.errors.get()
    }

    /// Overload (shed) responses received.
    pub fn shed(&self) -> u64 {
        self.shed.get()
    }

    /// Deadline-exceeded responses received.
    pub fn deadline_exceeded(&self) -> u64 {
        self.deadline_exceeded.get()
    }

    /// Requests shed server-side because their deadline expired.
    pub fn deadline_shed(&self) -> u64 {
        self.deadline_shed.get()
    }

    /// Request bytes sent (payload, pre-framing).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.get()
    }

    /// Response bytes received (payload, pre-framing).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.get()
    }

    /// Error rate among received responses (0.0 when none received).
    pub fn error_rate(&self) -> f64 {
        let responses = self.responses();
        if responses == 0 {
            0.0
        } else {
            (self.errors() + self.shed() + self.deadline_exceeded()) as f64 / responses as f64
        }
    }
}

impl Default for RpcStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = RpcStats::new();
        s.record_request(100);
        s.record_request(50);
        s.record_response(10, Status::Ok);
        s.record_response(0, Status::Overloaded);
        s.record_response(5, Status::Error);
        s.record_response(0, Status::DeadlineExceeded);
        s.record_deadline_shed();
        assert_eq!(s.requests(), 2);
        assert_eq!(s.responses(), 4);
        assert_eq!(s.errors(), 1);
        assert_eq!(s.shed(), 1);
        assert_eq!(s.deadline_exceeded(), 1);
        assert_eq!(s.deadline_shed(), 1);
        assert_eq!(s.bytes_sent(), 150);
        assert_eq!(s.bytes_received(), 15);
        assert!((s.error_rate() - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn error_rate_of_empty_stats_is_zero() {
        assert_eq!(RpcStats::new().error_rate(), 0.0);
    }

    #[test]
    fn counters_appear_in_shared_registry() {
        let telemetry = Telemetry::new();
        let s = RpcStats::with_telemetry(&telemetry, metrics::PREFIX_RPC);
        s.record_request(32);
        s.record_response(8, Status::Ok);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("rpc.requests"), Some(1));
        assert_eq!(snap.counter("rpc.responses"), Some(1));
        assert_eq!(snap.counter("rpc.bytes_sent"), Some(32));
    }
}
