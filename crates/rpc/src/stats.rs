//! Transport-level counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Byte and message counters shared between a transport's endpoints.
///
/// All counters are monotonically increasing and safe to read while the
/// transport is live.
#[derive(Debug, Default)]
pub struct RpcStats {
    requests: AtomicU64,
    responses: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
}

impl RpcStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_request(&self, bytes: usize) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_response(&self, bytes: usize, ok: bool, overloaded: bool) {
        self.responses.fetch_add(1, Ordering::Relaxed);
        self.bytes_received.fetch_add(bytes as u64, Ordering::Relaxed);
        if overloaded {
            self.shed.fetch_add(1, Ordering::Relaxed);
        } else if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Requests sent.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Responses received.
    pub fn responses(&self) -> u64 {
        self.responses.load(Ordering::Relaxed)
    }

    /// Application-error responses received.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Overload (shed) responses received.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Request bytes sent (payload, pre-framing).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Response bytes received (payload, pre-framing).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Error rate among received responses (0.0 when none received).
    pub fn error_rate(&self) -> f64 {
        let responses = self.responses();
        if responses == 0 {
            0.0
        } else {
            (self.errors() + self.shed()) as f64 / responses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = RpcStats::new();
        s.record_request(100);
        s.record_request(50);
        s.record_response(10, true, false);
        s.record_response(0, false, true);
        s.record_response(5, false, false);
        assert_eq!(s.requests(), 2);
        assert_eq!(s.responses(), 3);
        assert_eq!(s.errors(), 1);
        assert_eq!(s.shed(), 1);
        assert_eq!(s.bytes_sent(), 150);
        assert_eq!(s.bytes_received(), 15);
        assert!((s.error_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn error_rate_of_empty_stats_is_zero() {
        assert_eq!(RpcStats::new().error_rate(), 0.0);
    }
}
