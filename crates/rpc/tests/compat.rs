//! Wire compatibility across protocol revisions: a v1 client (no
//! deadline, no correlation id) against the pipelined server, and the
//! pipelining client against a server running with the window disabled.

use dcperf_rpc::frame::{read_frame, write_frame};
use dcperf_rpc::{wire, PipelineConfig, PoolConfig, Request, Response, TcpClient, TcpServer};
use std::io::Write;
use std::net::TcpStream;

fn start_server(pipeline: PipelineConfig) -> TcpServer {
    TcpServer::bind_with_pipeline(
        "127.0.0.1:0",
        |req: &Request| Response::ok(req.body.clone()),
        PoolConfig::single_lane(2).with_queue_depth(64),
        pipeline,
    )
    .expect("bind echo server")
}

/// Encodes a request exactly as the v1 protocol did: seq, method, body —
/// no trailing deadline, no trailing correlation id.
fn encode_v1_request(seq: u64, method: &str, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    wire::write_uvarint(&mut out, seq);
    wire::write_str(&mut out, method);
    wire::write_bytes(&mut out, body);
    out
}

#[test]
fn v1_client_works_against_pipelined_server() {
    let server = start_server(PipelineConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));

    for seq in 1..=5u64 {
        let body = seq.to_le_bytes().to_vec();
        let mut frame_bytes = Vec::new();
        write_frame(&mut frame_bytes, &encode_v1_request(seq, "echo", &body))
            .expect("encode v1 frame");
        stream.write_all(&frame_bytes).expect("send");

        let frame = read_frame(&mut reader).expect("read").expect("open");
        // A v1 client only understands seq, status, body; the trailing
        // corr the new server appends must be ignorable, and the visible
        // prefix identical to what a v1 server would have sent.
        let resp = Response::decode(&frame).expect("decodes");
        assert_eq!(resp.seq, seq);
        assert!(resp.is_ok());
        assert_eq!(resp.body, body);
        // An uncorrelated (corr == 0) request echoes corr 0: the v1
        // fallback path on the decode side then resolves corr = seq.
        let mut v1_visible = Vec::new();
        wire::write_uvarint(&mut v1_visible, resp.seq);
        v1_visible.push(frame[v1_visible.len()]); // status byte
        wire::write_bytes(&mut v1_visible, &resp.body);
        assert_eq!(
            &frame[..v1_visible.len()],
            &v1_visible[..],
            "v1-visible prefix must be unchanged"
        );
    }
    server.shutdown();
}

#[test]
fn pipelining_client_works_against_disabled_server() {
    let server = start_server(PipelineConfig::disabled());
    let mut client = TcpClient::connect(server.local_addr())
        .expect("connect")
        .with_window(8);

    // Single calls.
    for i in 0..4u64 {
        let resp = client.call("echo", i.to_le_bytes().to_vec()).expect("call");
        assert_eq!(resp.body, i.to_le_bytes().to_vec());
    }

    // A full batch: the disabled server serves the window one at a time
    // (in order), which the correlation matching handles transparently.
    let bodies: Vec<Vec<u8>> = (0..8u64).map(|i| i.to_le_bytes().to_vec()).collect();
    for (i, outcome) in client.call_many("echo", bodies).into_iter().enumerate() {
        let resp = outcome.expect("batched call against disabled server succeeds");
        assert_eq!(resp.body, (i as u64).to_le_bytes().to_vec());
    }
    server.shutdown();
}

#[test]
fn legacy_response_resolves_corr_to_seq_client_side() {
    // A pre-pipelining server echoes seq but appends no corr field; the
    // decode fallback must keep single-request-per-turn clients working.
    let mut legacy = Vec::new();
    wire::write_uvarint(&mut legacy, 42);
    legacy.push(0); // Status::Ok
    wire::write_bytes(&mut legacy, b"payload");
    let resp = Response::decode(&legacy).expect("legacy frame decodes");
    assert_eq!(resp.seq, 42);
    assert_eq!(resp.corr, 42, "corr falls back to seq for legacy frames");
    assert_eq!(resp.body, b"payload");
}
