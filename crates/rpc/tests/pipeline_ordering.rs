//! Out-of-order completion: a slow request at the head of a pipelined
//! connection must not head-of-line-block the fast requests queued behind
//! it. The raw-stream client here writes four frames back-to-back and
//! observes the order responses actually come back in.

use dcperf_rpc::frame::{read_frame, write_frame};
use dcperf_rpc::{Lane, PipelineConfig, PoolConfig, Request, Response, TcpServer};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

const SLOW_MS: u64 = 150;

fn start_fast_slow_server() -> TcpServer {
    TcpServer::bind_full(
        "127.0.0.1:0",
        |req: &Request| {
            if req.method == "slow" {
                std::thread::sleep(Duration::from_millis(SLOW_MS));
            }
            Response::ok(req.body.clone())
        },
        |req: &Request| {
            if req.method == "slow" {
                Lane::Slow
            } else {
                Lane::Fast
            }
        },
        PoolConfig::fast_slow(2, 2).with_queue_depth(256),
        PipelineConfig::default(),
    )
    .expect("bind fast/slow server")
}

#[test]
fn slow_head_does_not_block_fast_tail() {
    let server = start_fast_slow_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    // One slow request first, three fast ones right behind it, written
    // back-to-back before reading anything.
    let mut burst = Vec::new();
    for (corr, method) in [(1u64, "slow"), (2, "fast"), (3, "fast"), (4, "fast")] {
        let mut req = Request::new(method, corr.to_le_bytes().to_vec());
        req.seq = corr;
        req.corr = corr;
        write_frame(&mut burst, &req.encode()).expect("encode burst");
    }
    stream.write_all(&burst).expect("send burst");
    stream.flush().expect("flush burst");

    let mut arrived = Vec::new();
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    while arrived.len() < 4 {
        let frame = read_frame(&mut reader)
            .expect("read response frame")
            .expect("connection stays open until all four responses");
        let resp = Response::decode(&frame).expect("response decodes");
        assert!(resp.is_ok(), "all four requests succeed");
        assert_eq!(
            resp.body,
            resp.corr.to_le_bytes().to_vec(),
            "payload rides with its correlation id"
        );
        arrived.push(resp.corr);
    }

    let mut sorted = arrived.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![1, 2, 3, 4], "every correlation id arrives");
    assert_ne!(
        arrived[0], 1,
        "a fast response must overtake the slow head (arrival order {arrived:?})"
    );
    assert_eq!(
        arrived[3], 1,
        "the slow request completes last (arrival order {arrived:?})"
    );
    assert!(
        server.pipeline().inflight_peak() > 1,
        "the window must have held multiple requests in flight, peak={}",
        server.pipeline().inflight_peak()
    );
    server.shutdown();
}

#[test]
fn disabled_pipeline_serializes_the_window() {
    // With max_inflight == 1 the same burst is served strictly in order:
    // the v1 degenerate mode.
    let server = TcpServer::bind_with_pipeline(
        "127.0.0.1:0",
        |req: &Request| {
            if req.method == "slow" {
                std::thread::sleep(Duration::from_millis(40));
            }
            Response::ok(req.body.clone())
        },
        PoolConfig::single_lane(4).with_queue_depth(256),
        PipelineConfig::disabled(),
    )
    .expect("bind serialized server");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    let mut burst = Vec::new();
    for (corr, method) in [(1u64, "slow"), (2, "fast"), (3, "fast")] {
        let mut req = Request::new(method, vec![]);
        req.seq = corr;
        req.corr = corr;
        write_frame(&mut burst, &req.encode()).expect("encode burst");
    }
    stream.write_all(&burst).expect("send burst");

    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let mut arrived = Vec::new();
    while arrived.len() < 3 {
        let frame = read_frame(&mut reader).expect("read").expect("open");
        arrived.push(Response::decode(&frame).expect("decodes").corr);
    }
    assert_eq!(arrived, vec![1, 2, 3], "one-at-a-time mode preserves order");
    server.shutdown();
}
