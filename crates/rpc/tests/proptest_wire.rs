//! Property tests for the RPC wire formats: values, requests, responses,
//! and frames all round-trip, and decoders reject garbage without
//! panicking.

use dcperf_rpc::wire::WireError;
use dcperf_rpc::{frame, Request, Response, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Strategy for arbitrary (bounded-depth) RPC values.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::I64),
        (-1e300f64..1e300).prop_map(Value::F64),
        ".{0,24}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bin),
    ];
    leaf.prop_recursive(3, 64, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::List),
            proptest::collection::vec((".{0,12}", inner.clone()), 0..6).prop_map(|pairs| {
                let map: BTreeMap<String, Value> = pairs.into_iter().collect();
                Value::Map(map)
            }),
            proptest::collection::vec((any::<u32>(), inner), 0..6).prop_map(Value::Struct),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn values_round_trip(value in value_strategy()) {
        let bytes = value.encode();
        let back = Value::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back, value);
    }

    #[test]
    fn value_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Value::decode(&data);
    }

    #[test]
    fn requests_round_trip(
        seq in any::<u64>(),
        method in "[a-z_]{1,24}",
        body in proptest::collection::vec(any::<u8>(), 0..256),
        deadline_us in any::<u64>(),
        corr in any::<u64>(),
    ) {
        let req = Request { seq, method, body, deadline_us, corr };
        prop_assert_eq!(Request::decode(&req.encode()).expect("decodes"), req);
    }

    #[test]
    fn responses_round_trip(
        seq in any::<u64>(),
        body in proptest::collection::vec(any::<u8>(), 0..256),
        kind in 0u8..4,
        corr in any::<u64>(),
    ) {
        let mut resp = match kind {
            0 => Response::ok(body),
            1 => Response::error(&String::from_utf8_lossy(&body)),
            2 => Response::deadline_exceeded(),
            _ => Response::overloaded(),
        };
        resp.seq = seq;
        resp.corr = corr;
        prop_assert_eq!(Response::decode(&resp.encode()).expect("decodes"), resp);
    }

    /// Correlation ids survive the round trip independently of seq: the
    /// multiplexing layer relies on the two fields never aliasing.
    #[test]
    fn corr_and_seq_are_independent(
        seq in any::<u64>(),
        corr in any::<u64>(),
        method in "[a-z_]{1,12}",
    ) {
        let req = Request { seq, method, body: vec![], deadline_us: 7, corr };
        let back = Request::decode(&req.encode()).expect("decodes");
        prop_assert_eq!(back.seq, seq);
        prop_assert_eq!(back.corr, corr);
        prop_assert_eq!(back.deadline_us, 7);
    }

    #[test]
    fn frames_round_trip_over_streams(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..512), 0..8),
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            frame::write_frame(&mut stream, p).expect("in-memory write succeeds");
        }
        let mut cursor = std::io::Cursor::new(stream);
        for p in &payloads {
            let got = frame::read_frame(&mut cursor).expect("reads").expect("present");
            prop_assert_eq!(&got, p);
        }
        prop_assert!(frame::read_frame(&mut cursor).expect("clean EOF").is_none());
    }

    #[test]
    fn request_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(&data);
        let _ = Response::decode(&data);
    }

    /// Byte-mutation fuzz: flipping any byte of a valid encoding (or
    /// truncating it) must either still decode or fail with a *typed*
    /// [`WireError`] — never a panic, never a mystery error.
    #[test]
    fn mutated_requests_fail_typed(
        seq in any::<u64>(),
        method in "[a-z_]{1,16}",
        body in proptest::collection::vec(any::<u8>(), 0..64),
        deadline_us in any::<u64>(),
        corr in any::<u64>(),
        flip_at in any::<usize>(),
        flip_bits in 1u8..255,
        truncate_to in any::<usize>(),
    ) {
        let req = Request { seq, method, body, deadline_us, corr };
        let mut bytes = req.encode();

        // Single-byte mutation.
        let idx = flip_at % bytes.len();
        bytes[idx] ^= flip_bits;
        match Request::decode(&bytes) {
            Ok(_) => {} // mutation landed in a don't-care position
            Err(e) => prop_assert!(matches!(
                e,
                WireError::UnexpectedEof
                    | WireError::VarintOverflow
                    | WireError::InvalidLength(_)
                    | WireError::UnknownTag(_)
                    | WireError::InvalidUtf8
            )),
        }

        // Truncation of the *unmutated* encoding.
        let intact = req.encode();
        let cut = truncate_to % (intact.len() + 1);
        match Request::decode(&intact[..cut]) {
            // A cut that lands exactly on the end of a trailing optional
            // field (corr, deadline) still decodes; anything else must be
            // a typed failure.
            Ok(back) => prop_assert_eq!(back.seq, seq),
            Err(e) => prop_assert!(matches!(
                e,
                WireError::UnexpectedEof
                    | WireError::VarintOverflow
                    | WireError::InvalidLength(_)
                    | WireError::UnknownTag(_)
                    | WireError::InvalidUtf8
            )),
        }
    }

    #[test]
    fn mutated_responses_fail_typed(
        seq in any::<u64>(),
        body in proptest::collection::vec(any::<u8>(), 0..64),
        corr in any::<u64>(),
        flip_at in any::<usize>(),
        flip_bits in 1u8..255,
    ) {
        let mut resp = Response::ok(body);
        resp.seq = seq;
        resp.corr = corr;
        let mut bytes = resp.encode();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= flip_bits;
        match Response::decode(&bytes) {
            Ok(_) => {}
            Err(e) => prop_assert!(matches!(
                e,
                WireError::UnexpectedEof
                    | WireError::VarintOverflow
                    | WireError::InvalidLength(_)
                    | WireError::UnknownTag(_)
                    | WireError::InvalidUtf8
            )),
        }
    }
}
