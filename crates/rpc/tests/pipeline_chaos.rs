//! Chaos on the pipelined path: a `ResilientClient` driving batched
//! calls through a fault-injecting server must honor per-request
//! deadlines, and its circuit breaker must count each correlated failure
//! exactly once — a double count anywhere in the burst accounting would
//! trip the breaker a full burst early.
#![cfg(feature = "fault-injection")]

use dcperf_resilience::{BreakerConfig, CircuitBreaker, FaultPlan, LatencyFault, RetryPolicy};
use dcperf_rpc::{
    PipelineConfig, PoolConfig, Request, ResilientClient, Response, RpcError, TcpClient, TcpServer,
};
use dcperf_telemetry::Telemetry;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn start_server() -> TcpServer {
    TcpServer::bind_with_pipeline(
        "127.0.0.1:0",
        |req: &Request| Response::ok(req.body.clone()),
        PoolConfig::single_lane(4).with_queue_depth(256),
        PipelineConfig::default(),
    )
    .expect("bind echo server")
}

#[test]
fn pipelined_batch_honors_per_request_deadlines() {
    let server = start_server();
    // Every request pays a 30ms injected stall; the attempt deadline is
    // 5ms, so the server must shed each one as deadline-exceeded instead
    // of serving it late.
    server.install_fault_plan(Some(Arc::new(
        FaultPlan::new(11).with_latency(1.0, LatencyFault::Fixed(Duration::from_millis(30))),
    )));

    let telemetry = Telemetry::new();
    let inner = Mutex::new(
        TcpClient::connect(server.local_addr())
            .expect("connect")
            .with_window(8),
    );
    let client = ResilientClient::new(inner, RetryPolicy::no_retries(), &telemetry)
        .with_attempt_deadline(Duration::from_millis(5));

    let bodies: Vec<Vec<u8>> = (0..8u64).map(|i| i.to_le_bytes().to_vec()).collect();
    let outcomes = client.call_many("echo", bodies);
    assert_eq!(outcomes.len(), 8);
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Err(RpcError::DeadlineExceeded) | Err(RpcError::Timeout) => {}
            other => panic!("request {i}: expected a deadline failure, got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn breaker_counts_each_correlated_failure_once() {
    let server = start_server();
    server.install_fault_plan(Some(Arc::new(
        FaultPlan::new(13).with_latency(1.0, LatencyFault::Fixed(Duration::from_millis(30))),
    )));

    let telemetry = Telemetry::new();
    let breaker = Arc::new(CircuitBreaker::new(BreakerConfig {
        min_calls: 8,
        ..BreakerConfig::default()
    }));
    let inner = Mutex::new(
        TcpClient::connect(server.local_addr())
            .expect("connect")
            .with_window(4),
    );
    let client = ResilientClient::new(inner, RetryPolicy::no_retries(), &telemetry)
        .with_attempt_deadline(Duration::from_millis(5))
        .with_breaker(Arc::clone(&breaker));

    let burst = |tag: u64| -> Vec<Vec<u8>> {
        (0..4u64)
            .map(|i| (tag << 8 | i).to_le_bytes().to_vec())
            .collect()
    };

    // Burst 1: four deadline failures. With exactly-once accounting the
    // window holds 4 outcomes — below min_calls, so the breaker must
    // still be closed. Double-counting would put 8 in the window and
    // trip it right here.
    let first = client.call_many("echo", burst(1));
    assert!(first.iter().all(Result::is_err), "all injected calls fail");
    assert_eq!(
        breaker.open_transitions(),
        0,
        "4 failures < min_calls(8): a trip here means the burst was double-counted"
    );
    assert!(breaker.allow(), "breaker must still admit traffic");

    // Burst 2: four more. Now the window holds exactly 8 failures and
    // the breaker opens — once.
    let second = client.call_many("echo", burst(2));
    assert!(second.iter().all(Result::is_err));
    assert_eq!(
        breaker.open_transitions(),
        1,
        "8 failures at ratio 1.0 must open the breaker exactly once"
    );
    server.shutdown();
}
