//! Concurrency stress for the multiplexed RPC path: many client threads,
//! each keeping a pipelined window of requests in flight over its own
//! connection (and over a shared pool), with an echo oracle proving every
//! response was matched to *its* request's correlation id — a swap
//! anywhere in the window would scramble the payloads.
//!
//! Runs identically with and without `--features fault-injection` (no
//! plan is installed, so the injection hook must be inert).

use dcperf_rpc::{PipelineConfig, PoolConfig, Request, Response, TcpClient, TcpClientPool};
use std::net::SocketAddr;
use std::sync::Arc;

const THREADS: usize = 4;
const BATCHES: usize = 24;
const WINDOW: usize = 16;

/// The expected echo payload for (thread, batch, slot): unique per
/// request so any cross-wiring of correlation ids is caught by content.
fn payload(thread: usize, batch: usize, slot: usize) -> Vec<u8> {
    format!("t{thread}.b{batch}.s{slot}").into_bytes()
}

fn start_echo_server() -> (dcperf_rpc::TcpServer, SocketAddr) {
    let server = dcperf_rpc::TcpServer::bind_with_pipeline(
        "127.0.0.1:0",
        |req: &Request| Response::ok(req.body.clone()),
        PoolConfig::single_lane(4).with_queue_depth(1024),
        PipelineConfig::default(),
    )
    .expect("bind echo server");
    let addr = server.local_addr();
    (server, addr)
}

#[test]
fn pipelined_tcp_clients_match_responses_to_requests() {
    let (server, addr) = start_echo_server();
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            scope.spawn(move || {
                let mut client = TcpClient::connect(addr)
                    .expect("connect")
                    .with_window(WINDOW);
                for batch in 0..BATCHES {
                    let bodies: Vec<Vec<u8>> = (0..WINDOW)
                        .map(|slot| payload(thread, batch, slot))
                        .collect();
                    let outcomes = client.call_many("echo", bodies);
                    assert_eq!(outcomes.len(), WINDOW);
                    for (slot, outcome) in outcomes.into_iter().enumerate() {
                        let resp = outcome
                            .unwrap_or_else(|e| panic!("t{thread} b{batch} s{slot} failed: {e}"));
                        assert_eq!(
                            resp.body,
                            payload(thread, batch, slot),
                            "response body must echo the request that owns the slot"
                        );
                    }
                }
            });
        }
    });
    assert!(
        server.pipeline().flushes() > 0,
        "the batched writer must have flushed at least once"
    );
    server.shutdown();
}

#[test]
fn shared_pool_pipelines_batches_down_single_connections() {
    let (server, addr) = start_echo_server();
    let pool = Arc::new(TcpClientPool::connect(addr, 2, WINDOW).expect("pool connects"));
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let pool = Arc::clone(&pool);
            scope.spawn(move || {
                for batch in 0..BATCHES {
                    let bodies: Vec<Vec<u8>> = (0..WINDOW)
                        .map(|slot| payload(thread, batch, slot))
                        .collect();
                    let outcomes = pool.call_many("echo", bodies);
                    for (slot, outcome) in outcomes.into_iter().enumerate() {
                        let resp = outcome.expect("pooled batch call succeeds");
                        assert_eq!(resp.body, payload(thread, batch, slot));
                    }
                    // Interleave some single calls through the same pool.
                    let single = pool
                        .call("echo", payload(thread, batch, usize::MAX))
                        .expect("pooled single call succeeds");
                    assert_eq!(single.body, payload(thread, batch, usize::MAX));
                }
            });
        }
    });
    server.shutdown();
}

#[test]
fn inproc_call_many_matches_out_of_order_completions() {
    let server = dcperf_rpc::InProcServer::start(
        |req: &Request| Response::ok(req.body.clone()),
        PoolConfig::single_lane(4).with_queue_depth(1024),
    );
    let client = server.client();
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let client = client.clone();
            scope.spawn(move || {
                for batch in 0..BATCHES {
                    let bodies: Vec<Vec<u8>> = (0..WINDOW)
                        .map(|slot| payload(thread, batch, slot))
                        .collect();
                    for (slot, outcome) in client.call_many("echo", bodies).into_iter().enumerate()
                    {
                        let resp = outcome.expect("in-proc batch call succeeds");
                        assert_eq!(resp.body, payload(thread, batch, slot));
                    }
                }
            });
        }
    });
    server.shutdown();
}
