//! Integration tests over the seeded-violation fixture workspace at
//! `tests/fixtures/mini_ws/` — every rule family must fire at its exact
//! span, and the clean fixture crate must stay silent — plus a
//! self-check that the real workspace stays analyzer-clean.

use dcperf_analyzer::diag::Severity;
use dcperf_analyzer::policy::{OrderingAllow, Policy};
use dcperf_analyzer::{analyze, workspace};
use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini_ws")
}

fn fixture_policy() -> Policy {
    Policy {
        hot_path_crates: vec!["hot".into()],
        deterministic_paths: vec!["crates/hot/src/det.rs".into()],
        ordering_allow: vec![OrderingAllow {
            path_prefix: "crates/clean/src/".into(),
            orderings: vec!["Relaxed".into()],
            rationale: "fixture: clean crate may use relaxed counters".into(),
        }],
        gated_features: vec!["fault-injection".into()],
        schema_path: "crates/tele/src/metrics.rs".into(),
    }
}

#[test]
fn every_rule_family_fires_at_its_seeded_span() {
    let report = analyze(&fixture_root(), &fixture_policy()).expect("fixture workspace loads");
    let fired: Vec<(&str, &str, u32)> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();

    let expected: &[(&str, &str, u32)] = &[
        ("atomics-order", "crates/hot/src/lib.rs", 17),
        ("metrics-schema", "crates/hot/src/lib.rs", 21),
        ("panic-path", "crates/hot/src/lib.rs", 25),
        ("suppression", "crates/hot/src/lib.rs", 28), // stale allow
        ("suppression", "crates/hot/src/lib.rs", 31), // reasonless allow
        ("wall-clock", "crates/hot/src/det.rs", 6),
        ("feature-gate", "crates/gates/src/lib.rs", 3),
        ("unsafe-comment", "crates/gates/src/lib.rs", 7),
        ("unsafe-forbid", "crates/gates/src/lib.rs", 1),
        ("unsafe-forbid", "crates/plain/src/lib.rs", 1),
        ("metrics-orphan", "crates/tele/src/metrics.rs", 5), // APP_UNUSED
    ];
    for want in expected {
        assert!(
            fired.contains(want),
            "expected {want:?} to fire; got {fired:#?}"
        );
    }
    assert_eq!(
        fired.len(),
        expected.len(),
        "unexpected extra diagnostics: {:#?}",
        report.diagnostics
    );
}

#[test]
fn clean_fixture_crate_is_silent_and_its_allow_counts_as_used() {
    let report = analyze(&fixture_root(), &fixture_policy()).expect("fixture workspace loads");
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| !d.file.starts_with("crates/clean/")),
        "clean crate must produce no diagnostics: {:#?}",
        report.diagnostics
    );
    // The clean crate's one allow suppressed its SeqCst finding.
    assert_eq!(report.suppressed, 1);
}

#[test]
fn test_regions_in_fixtures_are_exempt() {
    let report = analyze(&fixture_root(), &fixture_policy()).expect("fixture workspace loads");
    // hot/src/lib.rs's #[cfg(test)] module repeats the SeqCst and unwrap
    // patterns after line 34; none of them may fire.
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| !(d.file == "crates/hot/src/lib.rs" && d.line > 34)),
        "{:#?}",
        report.diagnostics
    );
}

#[test]
fn all_fixture_findings_are_warnings_except_none() {
    let report = analyze(&fixture_root(), &fixture_policy()).expect("fixture workspace loads");
    assert_eq!(report.count(Severity::Error), 0);
    assert!(report.failed(true));
    assert!(!report.failed(false));
}

/// The real workspace must stay analyzer-clean — the same gate CI runs
/// via `cargo analyze --deny warnings`.
#[test]
fn real_workspace_is_clean_under_the_shipped_policy() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = workspace::load(&root).expect("real workspace loads");
    let report = dcperf_analyzer::analyze_files(&ws, &Policy::dcperf());
    assert!(
        report.diagnostics.is_empty(),
        "run `cargo analyze` and fix or justify: {:#?}",
        report.diagnostics
    );
}
