//! Fixture crate that exercises every rule's *happy* path: the whole
//! file must stay silent.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Telemetry;
impl Telemetry {
    pub fn counter(&self, _name: &str) {}
    pub fn with_telemetry(&self, _prefix: &str) {}
}

/// Declared feature, so the gate is legitimate.
#[cfg(feature = "fault-injection")]
pub fn inject() {}

pub fn justified(stop: &AtomicU64) -> u64 {
    // ordering: advisory flag, stale reads are harmless
    stop.load(Ordering::Relaxed)
}

pub fn suppressed(x: Option<u8>) -> u8 {
    // analyzer: allow(atomics-order) — exercising a used allow on the next line
    AtomicU64::new(u64::from(x.unwrap_or(0))).load(Ordering::SeqCst) as u8
}

pub fn record(t: &Telemetry) {
    t.counter("app.good");
    t.with_telemetry("app.rpc");
    let scoped = format!("{}.{}", "app.rpc", "requests");
    t.counter(&scoped);
    let worker_template = "app.worker";
    t.counter(&format!("{worker_template}.7"));
}
