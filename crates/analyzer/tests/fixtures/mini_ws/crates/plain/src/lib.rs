//! Fixture unsafe-free crate that forgets `#![forbid(unsafe_code)]`
//! (unsafe-forbid fires at line 1).

pub fn id(x: u8) -> u8 {
    x
}
