//! Fixture crate with unsafe-hygiene and feature-gate violations.

#[cfg(feature = "fault-injection")] // line 3: feature-gate, undeclared
pub fn inject() {}

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() } // line 7: unsafe-comment, no SAFETY comment
}
