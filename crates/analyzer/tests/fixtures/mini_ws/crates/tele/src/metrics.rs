//! Fixture metrics schema: one fixed name, one deliberate orphan, one
//! composable prefix, one dynamic prefix, one suffix.

pub const APP_GOOD: &str = "app.good";
pub const APP_UNUSED: &str = "app.unused";
pub const PREFIX_APP: &str = "app.rpc";
pub const DYN_APP_WORKER: &str = "app.worker";

pub mod suffix {
    pub const REQUESTS: &str = "requests";
}
