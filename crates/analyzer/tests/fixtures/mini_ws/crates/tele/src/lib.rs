//! Fixture telemetry crate root: clean, unsafe-free.

#![forbid(unsafe_code)]

pub mod metrics;
