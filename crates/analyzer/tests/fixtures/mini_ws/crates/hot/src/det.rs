//! Fixture deterministic module: wall-clock reads are banned here.

use std::time::Instant;

pub fn elapsed_ns(since: Instant) -> u128 {
    Instant::now().duration_since(since).as_nanos() // line 6: wall-clock
}
