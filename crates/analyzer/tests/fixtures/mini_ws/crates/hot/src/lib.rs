//! Fixture hot-path crate root. Seeds one violation per per-file rule
//! family that applies to hot crates, plus suppression misuse, plus a
//! test region that must stay exempt.

#![forbid(unsafe_code)]

pub mod det;

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Telemetry;
impl Telemetry {
    pub fn counter(&self, _name: &str) {}
}

pub fn spin(stop: &AtomicU64) -> u64 {
    stop.load(Ordering::SeqCst) // line 17: atomics-order, no justification
}

pub fn record(t: &Telemetry) {
    t.counter("app.mystery.total"); // line 21: metrics-schema, undeclared
}

pub fn brittle(x: Option<u8>) -> u8 {
    x.unwrap() // line 25: panic-path in a hot crate
}

// analyzer: allow(panic-path) — nothing on the next line panics, so this is stale
pub fn calm() {}

// analyzer: allow(panic-path)
pub fn missing_reason() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let stop = AtomicU64::new(1);
        assert_eq!(stop.load(Ordering::SeqCst), 1);
        assert_eq!(brittle(Some(7)), 7);
        let x: Option<u8> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
