//! The invariant policy: which crates are hot paths, which modules must
//! stay deterministic, which atomic orderings each module may use
//! without a justification comment, and where the metrics schema lives.
//!
//! [`Policy::dcperf`] encodes this workspace's invariants; fixture tests
//! build their own policies, so every knob is plain data.

/// One ordering-allowlist entry: any file whose workspace-relative path
/// starts with `path_prefix` may use the listed orderings freely.
#[derive(Debug, Clone)]
pub struct OrderingAllow {
    /// Workspace-relative path prefix (`/`-separated).
    pub path_prefix: String,
    /// Allowed `Ordering::` variants (`Relaxed`, `Acquire`, …).
    pub orderings: Vec<String>,
    /// Why these orderings are sound here — surfaced in diagnostics so
    /// the allowlist never becomes folklore.
    pub rationale: String,
}

/// The full rule configuration for one workspace.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Crate directory names (under `crates/`) whose non-test code must
    /// be free of `unwrap`/`expect`/`panic!` and friends.
    pub hot_path_crates: Vec<String>,
    /// Path prefixes of modules that must not read wall clocks
    /// (`Instant::now`, `SystemTime::…`): seeded/deterministic code.
    pub deterministic_paths: Vec<String>,
    /// Per-module atomic-ordering allowlist.
    pub ordering_allow: Vec<OrderingAllow>,
    /// Cargo features whose `cfg` blocks may only appear in crates that
    /// declare them.
    pub gated_features: Vec<String>,
    /// Workspace-relative path of the metrics schema module.
    pub schema_path: String,
}

impl Policy {
    /// The DCPerf-RS workspace policy.
    pub fn dcperf() -> Self {
        Self {
            hot_path_crates: vec![
                "rpc".into(),
                "kvstore".into(),
                "telemetry".into(),
                "loadgen".into(),
            ],
            deterministic_paths: vec![
                // Fault *decisions* must replay bit-for-bit from the seed.
                "crates/resilience/src/fault.rs".into(),
                // The platform model projects scores from calibration
                // tables; wall-clock reads would make projections flaky.
                "crates/platform/src/model.rs".into(),
                "crates/platform/src/projection.rs".into(),
            ],
            ordering_allow: vec![
                OrderingAllow {
                    path_prefix: "crates/telemetry/src/".into(),
                    orderings: vec!["Relaxed".into()],
                    rationale: "monotonic counters and striped histogram cells; snapshots \
                                synchronize via thread join, no data is published through \
                                these atomics"
                        .into(),
                },
                OrderingAllow {
                    path_prefix: "crates/tax/src/concurrency.rs".into(),
                    orderings: vec!["Relaxed".into()],
                    rationale: "the contended-counter microbenchmark measures cache-line \
                                ping-pong itself; stronger orderings would distort the \
                                datacenter-tax measurement"
                        .into(),
                },
                OrderingAllow {
                    path_prefix: "crates/resilience/src/fault.rs".into(),
                    orderings: vec!["Relaxed".into()],
                    rationale: "injection tallies; decisions derive from the op index, not \
                                from these counters"
                        .into(),
                },
                OrderingAllow {
                    path_prefix: "crates/resilience/src/retry.rs".into(),
                    orderings: vec!["Relaxed".into()],
                    rationale: "token-bucket balance is a single atomic with CAS; no other \
                                memory is guarded by it"
                        .into(),
                },
                OrderingAllow {
                    path_prefix: "crates/workloads/src/".into(),
                    orderings: vec!["Relaxed".into()],
                    rationale: "workload kernels count completed operations; totals are \
                                read after scope join"
                        .into(),
                },
            ],
            gated_features: vec!["fault-injection".into()],
            schema_path: "crates/telemetry/src/metrics.rs".into(),
        }
    }

    /// The allowlist entry covering `rel`, if any.
    pub fn ordering_entry(&self, rel: &str) -> Option<&OrderingAllow> {
        self.ordering_allow
            .iter()
            .find(|e| rel.starts_with(e.path_prefix.as_str()))
    }

    /// True when `rel` must stay free of wall-clock reads.
    pub fn is_deterministic_path(&self, rel: &str) -> bool {
        self.deterministic_paths
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
    }

    /// True when `crate_name` is a hot-path crate.
    pub fn is_hot_path(&self, crate_name: &str) -> bool {
        self.hot_path_crates.iter().any(|c| c == crate_name)
    }
}
