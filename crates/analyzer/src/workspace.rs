//! Workspace discovery: which `.rs` files to lint, which crate each one
//! belongs to, and which Cargo features each crate declares.
//!
//! The walk is deliberately simple and offline: `src/`, `tests/`,
//! `examples/` and `benches/` of the root package plus every crate under
//! `crates/`. `vendor/` (offline dependency shims), `target/`, hidden
//! directories, and anything under a `fixtures/` directory (the
//! analyzer's own seeded-violation corpus) are skipped.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source file to lint.
#[derive(Debug)]
pub struct WorkspaceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Crate directory name (`rpc`, `telemetry`, …; the root package is
    /// its directory-independent name `dcperf`).
    pub crate_name: String,
    /// File contents.
    pub src: String,
    /// Is this a target root (`lib.rs`, `main.rs`, `bin/*.rs`)?
    pub is_crate_root: bool,
}

/// The discovered workspace.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Every file to lint, sorted by path.
    pub files: Vec<WorkspaceFile>,
    /// Declared Cargo features per crate name.
    pub features: BTreeMap<String, Vec<String>>,
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", "node_modules"];

/// The subdirectories of a package that contain lintable Rust.
const PACKAGE_DIRS: &[&str] = &["src", "tests", "examples", "benches"];

/// Loads the workspace rooted at `root`.
pub fn load(root: &Path) -> io::Result<Workspace> {
    let mut ws = Workspace::default();

    // Root package.
    ws.features.insert(
        "dcperf".to_string(),
        parse_features(&root.join("Cargo.toml")),
    );
    for dir in PACKAGE_DIRS {
        collect(root, &root.join(dir), "dcperf", &mut ws.files)?;
    }

    // Member crates.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for crate_dir in entries {
            let name = crate_dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            if name.is_empty() || name.starts_with('.') {
                continue;
            }
            ws.features
                .insert(name.clone(), parse_features(&crate_dir.join("Cargo.toml")));
            for dir in PACKAGE_DIRS {
                collect(root, &crate_dir.join(dir), &name, &mut ws.files)?;
            }
        }
    }

    ws.files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(ws)
}

fn collect(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<WorkspaceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let file_name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if file_name.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            if SKIP_DIRS.contains(&file_name.as_str()) {
                continue;
            }
            collect(root, &path, crate_name, out)?;
        } else if file_name.ends_with(".rs") {
            let rel = rel_path(root, &path);
            let src = fs::read_to_string(&path)?;
            let is_crate_root = {
                let tail = rel.rsplit('/').next().unwrap_or("");
                let in_src = rel.contains("src/");
                (in_src && (tail == "lib.rs" || tail == "main.rs")) || rel.contains("src/bin/")
            };
            out.push(WorkspaceFile {
                rel,
                crate_name: crate_name.to_string(),
                src,
                is_crate_root,
            });
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Extracts declared feature names from a Cargo.toml `[features]`
/// section with a plain line scan (no TOML dependency).
fn parse_features(manifest: &Path) -> Vec<String> {
    let Ok(text) = fs::read_to_string(manifest) else {
        return Vec::new();
    };
    let mut in_features = false;
    let mut features = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_features = line == "[features]";
            continue;
        }
        if !in_features || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, _)) = line.split_once('=') {
            let name = name.trim().trim_matches('"');
            if !name.is_empty() {
                features.push(name.to_string());
            }
        }
    }
    features
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_features_from_this_workspace() {
        // The analyzer's own crate dir sits at crates/analyzer.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let kvstore = parse_features(&root.join("crates/kvstore/Cargo.toml"));
        assert!(
            kvstore.contains(&"fault-injection".to_string()),
            "{kvstore:?}"
        );
        let util = parse_features(&root.join("crates/util/Cargo.toml"));
        assert!(!util.contains(&"fault-injection".to_string()));
    }

    #[test]
    fn walks_this_workspace_and_skips_vendor_and_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let ws = load(&root).expect("workspace loads");
        assert!(ws.files.iter().any(|f| f.rel == "crates/rpc/src/server.rs"));
        assert!(ws.files.iter().any(|f| f.rel == "src/lib.rs"));
        assert!(!ws.files.iter().any(|f| f.rel.starts_with("vendor/")));
        assert!(!ws.files.iter().any(|f| f.rel.contains("/fixtures/")));
        let lib = ws
            .files
            .iter()
            .find(|f| f.rel == "crates/rpc/src/lib.rs")
            .unwrap();
        assert!(lib.is_crate_root);
        assert_eq!(lib.crate_name, "rpc");
        let module = ws
            .files
            .iter()
            .find(|f| f.rel == "crates/rpc/src/server.rs")
            .unwrap();
        assert!(!module.is_crate_root);
    }
}
