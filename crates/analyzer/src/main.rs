//! CLI entry point for `cargo analyze`.
//!
//! ```text
//! cargo analyze [--deny warnings] [--json PATH] [--root PATH]
//!               [--quiet] [--list-rules]
//! ```
//!
//! Exit status: 0 when clean (or only undenied warnings), 1 when any
//! error — or, under `--deny warnings`, any warning — survives
//! suppression, 2 on usage or IO errors.

#![forbid(unsafe_code)]

use dcperf_analyzer::diag::Severity;
use dcperf_analyzer::{analyze, diag, policy::Policy, rules};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    deny_warnings: bool,
    json: Option<PathBuf>,
    root: Option<PathBuf>,
    quiet: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny_warnings: false,
        json: None,
        root: None,
        quiet: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => match it.next().as_deref() {
                Some("warnings") => args.deny_warnings = true,
                other => return Err(format!("--deny expects `warnings`, got {other:?}")),
            },
            "--json" => match it.next() {
                Some(path) => args.json = Some(PathBuf::from(path)),
                None => return Err("--json expects a path".to_string()),
            },
            "--root" => match it.next() {
                Some(path) => args.root = Some(PathBuf::from(path)),
                None => return Err("--root expects a path".to_string()),
            },
            "--quiet" | "-q" => args.quiet = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                println!(
                    "cargo analyze — DCPerf-RS workspace invariant linter\n\n\
                     USAGE:\n    cargo analyze [--deny warnings] [--json PATH] [--root PATH] \
                     [--quiet] [--list-rules]\n\n\
                     Suppress a finding in source with:\n    \
                     // analyzer: allow(rule-id) — reason"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// Walks upward from the current directory to the workspace root (the
/// first ancestor whose Cargo.toml declares `[workspace]`).
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for (id, doc) in rules::RULE_DOCS {
            println!("{id:<16} {doc}");
        }
        return ExitCode::SUCCESS;
    }

    let Some(root) = args.root.clone().or_else(find_root) else {
        eprintln!("error: no workspace root found (run inside the repository or pass --root)");
        return ExitCode::from(2);
    };

    let report = match analyze(&root, &Policy::dcperf()) {
        Ok(report) => report,
        Err(err) => {
            eprintln!(
                "error: failed to read workspace at {}: {err}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if !args.quiet {
        for d in &report.diagnostics {
            println!("{d}");
        }
        let (errors, warnings) = (
            report.count(Severity::Error),
            report.count(Severity::Warning),
        );
        println!(
            "cargo analyze: {} files checked — {errors} error(s), {warnings} warning(s), \
             {} suppressed by in-source allows",
            report.files_checked, report.suppressed
        );
    }

    if let Some(path) = &args.json {
        let json = diag::to_json(&report.diagnostics, report.files_checked, report.suppressed);
        if let Err(err) = write_report(path, &json) {
            eprintln!(
                "error: cannot write JSON report to {}: {err}",
                path.display()
            );
            return ExitCode::from(2);
        }
        if !args.quiet {
            println!("JSON report written to {}", path.display());
        }
    }

    if report.failed(args.deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn write_report(path: &Path, json: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, json)
}
