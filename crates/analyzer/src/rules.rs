//! The rule families.
//!
//! Every rule walks the token stream of one file (or, for the workspace
//! rules, facts collected across files) and emits [`Diagnostic`]s.
//! Suppression filtering happens centrally in the engine, so rules here
//! report every candidate violation.
//!
//! | id               | family              | scope     |
//! |------------------|---------------------|-----------|
//! | `atomics-order`  | atomics audit       | per file  |
//! | `metrics-schema` | metrics conformance | per file  |
//! | `metrics-orphan` | metrics conformance | workspace |
//! | `panic-path`     | panic paths         | per file  |
//! | `unsafe-comment` | unsafe hygiene      | per file  |
//! | `unsafe-forbid`  | unsafe hygiene      | workspace |
//! | `feature-gate`   | feature hygiene     | per file  |
//! | `wall-clock`     | determinism         | per file  |
//! | `suppression`    | meta                | per file  |

use crate::context::FileCtx;
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Tok, TokKind};
use crate::policy::Policy;
use crate::schema::MetricsSchema;

/// Every rule id the analyzer can emit (used to validate allow comments).
pub const RULE_IDS: &[&str] = &[
    "atomics-order",
    "metrics-schema",
    "metrics-orphan",
    "panic-path",
    "unsafe-comment",
    "unsafe-forbid",
    "feature-gate",
    "wall-clock",
    "suppression",
];

/// One-line description per rule, for `--list-rules` and the docs.
pub const RULE_DOCS: &[(&str, &str)] = &[
    (
        "atomics-order",
        "every atomic Ordering:: use must match the module's allowlist or carry an `// ordering: reason` comment",
    ),
    (
        "metrics-schema",
        "metric-name string literals at telemetry call sites must be declared in telemetry::metrics",
    ),
    (
        "metrics-orphan",
        "every constant declared in telemetry::metrics must be referenced somewhere in the workspace",
    ),
    (
        "panic-path",
        "no unwrap()/expect()/panic!/unreachable!/todo!/unimplemented! in non-test code of hot-path crates",
    ),
    (
        "unsafe-comment",
        "every `unsafe` must be immediately preceded by a `// SAFETY:` comment",
    ),
    (
        "unsafe-forbid",
        "crates without unsafe must carry #![forbid(unsafe_code)]; crates with unsafe must lint unsafe_op_in_unsafe_fn",
    ),
    (
        "feature-gate",
        "cfg(feature = \"…\") for gated features only in crates that declare the feature",
    ),
    (
        "wall-clock",
        "no Instant/SystemTime reads in deterministic seeded modules",
    ),
    (
        "suppression",
        "allow comments must name a known rule, give a reason, and actually suppress something",
    ),
];

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn ident(tok: &Tok) -> Option<&str> {
    match &tok.kind {
        TokKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(tok: Option<&Tok>, c: char) -> bool {
    matches!(tok.map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
}

/// Rule `atomics-order`.
pub fn atomics_order(ctx: &FileCtx, policy: &Policy, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lx.tokens;
    for i in 0..toks.len() {
        if ident(&toks[i]) != Some("Ordering") {
            continue;
        }
        if !(is_punct(toks.get(i + 1), ':') && is_punct(toks.get(i + 2), ':')) {
            continue;
        }
        let Some(variant) = toks.get(i + 3).and_then(ident) else {
            continue;
        };
        if !ATOMIC_ORDERINGS.contains(&variant) {
            continue; // `cmp::Ordering::{Less,Equal,Greater}` and friends
        }
        let tok = &toks[i];
        if ctx.is_test_line(tok.line) {
            continue;
        }
        let entry = policy.ordering_entry(&ctx.rel);
        if entry.is_some_and(|e| e.orderings.iter().any(|o| o == variant)) {
            continue;
        }
        if ctx.ordering_justified.contains(&tok.line) {
            continue;
        }
        let allowed = entry
            .map(|e| format!(" (module allowlist permits: {})", e.orderings.join(", ")))
            .unwrap_or_default();
        out.push(Diagnostic::new(
            "atomics-order",
            Severity::Warning,
            &ctx.rel,
            tok.line,
            tok.col,
            format!(
                "Ordering::{variant} is not in this module's allowlist{allowed}; \
                 justify it with a trailing `// ordering: reason` comment or extend \
                 the allowlist in the analyzer policy"
            ),
        ));
    }
}

/// Call-site method names whose string-literal arguments name metrics.
const METRIC_CALLS: &[&str] = &["counter", "gauge", "histogram"];

/// Rule `metrics-schema`.
pub fn metrics_schema(
    ctx: &FileCtx,
    policy: &Policy,
    schema: &MetricsSchema,
    out: &mut Vec<Diagnostic>,
) {
    if ctx.rel == policy.schema_path || schema.is_empty() {
        return;
    }
    let toks = &ctx.lx.tokens;
    for i in 0..toks.len() {
        let Some(name) = ident(&toks[i]) else {
            continue;
        };
        let is_metric_call = METRIC_CALLS.contains(&name);
        let is_prefix_call = name == "with_telemetry";
        if !(is_metric_call || is_prefix_call) || !is_punct(toks.get(i + 1), '(') {
            continue;
        }
        // Scan the balanced argument list for string literals.
        let mut depth = 1usize;
        let mut j = i + 2;
        while depth > 0 {
            let Some(t) = toks.get(j) else { break };
            match &t.kind {
                TokKind::Punct('(') => depth += 1,
                TokKind::Punct(')') => depth -= 1,
                TokKind::Str(v) => {
                    check_metric_literal(ctx, schema, v, t, is_prefix_call, out);
                }
                _ => {}
            }
            j += 1;
        }
    }
}

fn check_metric_literal(
    ctx: &FileCtx,
    schema: &MetricsSchema,
    value: &str,
    tok: &Tok,
    is_prefix_position: bool,
    out: &mut Vec<Diagnostic>,
) {
    // Undotted literals ("hits", unit-test scratch names) are out of the
    // metric namespace; only dotted names are schema-governed.
    if !value.contains('.') {
        return;
    }
    // A format template: validate the static prefix before the first
    // placeholder. `"{prefix}.{}"` has nothing static to check.
    if let Some(brace) = value.find('{') {
        let prefix = value[..brace].trim_end_matches('.');
        if !prefix.contains('.') && !schema.is_prefix(prefix) && !prefix.is_empty() {
            // Single-segment static prefix such as "rpc" — fine.
            return;
        }
        if prefix.is_empty()
            || schema.is_prefix(prefix)
            || schema.matches_dynamic(prefix)
            || schema.contains(prefix)
        {
            return;
        }
        out.push(Diagnostic::new(
            "metrics-schema",
            Severity::Warning,
            &ctx.rel,
            tok.line,
            tok.col,
            format!(
                "dynamic metric name `{value}` does not start from a declared prefix; \
                 declare a `DYN_*` or `PREFIX_*` constant in telemetry::metrics"
            ),
        ));
        return;
    }
    let ok = if is_prefix_position {
        schema.is_prefix(value) || schema.contains(value)
    } else {
        schema.contains(value) || schema.matches_dynamic(value)
    };
    if !ok {
        let kind = if is_prefix_position { "prefix" } else { "name" };
        out.push(Diagnostic::new(
            "metrics-schema",
            Severity::Warning,
            &ctx.rel,
            tok.line,
            tok.col,
            format!(
                "metric {kind} `{value}` is not declared in telemetry::metrics; \
                 declare it there (and use the constant) or fix the typo"
            ),
        ));
    }
}

/// Rule `metrics-orphan` (workspace scope). `usage` holds, for every
/// file except the schema module, the identifiers and string values it
/// mentions.
pub fn metrics_orphan(
    schema: &MetricsSchema,
    schema_rel: &str,
    usage: &[(String, std::collections::BTreeSet<String>)],
    out: &mut Vec<Diagnostic>,
) {
    for (ident, c) in schema.all_consts() {
        let referenced = usage.iter().any(|(rel, mentions)| {
            rel != schema_rel && (mentions.contains(ident) || mentions.contains(&c.value))
        });
        if !referenced {
            out.push(Diagnostic::new(
                "metrics-orphan",
                Severity::Warning,
                schema_rel,
                c.line,
                1,
                format!(
                    "schema constant `{ident}` (\"{}\") is never referenced outside the \
                     schema; delete it or migrate its call sites",
                    c.value
                ),
            ));
        }
    }
}

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Rule `panic-path`.
pub fn panic_path(ctx: &FileCtx, policy: &Policy, out: &mut Vec<Diagnostic>) {
    if !policy.is_hot_path(&ctx.crate_name) {
        return;
    }
    let toks = &ctx.lx.tokens;
    for i in 0..toks.len() {
        let Some(name) = ident(&toks[i]) else {
            continue;
        };
        let tok = &toks[i];
        if ctx.is_test_line(tok.line) {
            continue;
        }
        let hit = if PANIC_METHODS.contains(&name) {
            // `.unwrap(` / `.expect(` — a method call, not a definition.
            is_punct(toks.get(i + 1), '(') && i > 0 && is_punct(toks.get(i - 1), '.')
        } else if PANIC_MACROS.contains(&name) {
            is_punct(toks.get(i + 1), '!')
        } else {
            false
        };
        if hit {
            out.push(Diagnostic::new(
                "panic-path",
                Severity::Warning,
                &ctx.rel,
                tok.line,
                tok.col,
                format!(
                    "`{name}` on a hot-path crate; return an error instead, or add \
                     `// analyzer: allow(panic-path) — reason` if the panic is \
                     provably unreachable or startup-only"
                ),
            ));
        }
    }
}

/// Rule `unsafe-comment`.
pub fn unsafe_comment(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for t in &ctx.lx.tokens {
        if ident(t) != Some("unsafe") {
            continue;
        }
        if ctx.safety_covered.contains(&t.line) {
            continue;
        }
        out.push(Diagnostic::new(
            "unsafe-comment",
            Severity::Warning,
            &ctx.rel,
            t.line,
            t.col,
            "`unsafe` without an immediately preceding `// SAFETY:` comment".to_string(),
        ));
    }
}

/// Facts about one crate, for the workspace-scope unsafe rule.
pub struct CrateUnsafeFacts {
    /// Crate directory name.
    pub crate_name: String,
    /// Does any file in the crate use the `unsafe` keyword?
    pub has_unsafe: bool,
    /// The crate's root files (`lib.rs`, `main.rs`, `bin/*.rs`) with
    /// whether each carries `forbid(unsafe_code)` and
    /// `unsafe_op_in_unsafe_fn`.
    pub roots: Vec<(String, bool, bool)>,
}

/// Rule `unsafe-forbid` (workspace scope).
pub fn unsafe_forbid(facts: &[CrateUnsafeFacts], out: &mut Vec<Diagnostic>) {
    for c in facts {
        for (rel, has_forbid, has_unsafe_op_lint) in &c.roots {
            if !c.has_unsafe && !has_forbid {
                out.push(Diagnostic::new(
                    "unsafe-forbid",
                    Severity::Warning,
                    rel,
                    1,
                    1,
                    format!(
                        "crate `{}` uses no unsafe code but this target root lacks \
                         `#![forbid(unsafe_code)]`",
                        c.crate_name
                    ),
                ));
            }
            if c.has_unsafe && !has_unsafe_op_lint {
                out.push(Diagnostic::new(
                    "unsafe-forbid",
                    Severity::Warning,
                    rel,
                    1,
                    1,
                    format!(
                        "crate `{}` keeps unsafe code but this target root does not lint \
                         `unsafe_op_in_unsafe_fn` (add `#![deny(unsafe_op_in_unsafe_fn)]`)",
                        c.crate_name
                    ),
                ));
            }
        }
    }
}

/// Rule `feature-gate`. `declared` lists the features the crate's
/// Cargo.toml declares.
pub fn feature_gate(
    ctx: &FileCtx,
    policy: &Policy,
    declared: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let toks = &ctx.lx.tokens;
    for i in 0..toks.len() {
        if ident(&toks[i]) != Some("feature") || !is_punct(toks.get(i + 1), '=') {
            continue;
        }
        let Some(TokKind::Str(feat)) = toks.get(i + 2).map(|t| &t.kind) else {
            continue;
        };
        if !policy.gated_features.iter().any(|f| f == feat) {
            continue;
        }
        if declared.iter().any(|f| f == feat) {
            continue;
        }
        let tok = &toks[i];
        out.push(Diagnostic::new(
            "feature-gate",
            Severity::Warning,
            &ctx.rel,
            tok.line,
            tok.col,
            format!(
                "cfg for gated feature \"{feat}\" in crate `{}`, whose Cargo.toml does \
                 not declare that feature; declare it or move the gated code",
                ctx.crate_name
            ),
        ));
    }
}

/// Rule `wall-clock`.
pub fn wall_clock(ctx: &FileCtx, policy: &Policy, out: &mut Vec<Diagnostic>) {
    if !policy.is_deterministic_path(&ctx.rel) {
        return;
    }
    let toks = &ctx.lx.tokens;
    for i in 0..toks.len() {
        let Some(name) = ident(&toks[i]) else {
            continue;
        };
        if name != "Instant" && name != "SystemTime" {
            continue;
        }
        // Only `Instant::…` / `SystemTime::…` — a *read* of the wall
        // clock. Type positions and imports are deterministic.
        if !(is_punct(toks.get(i + 1), ':') && is_punct(toks.get(i + 2), ':')) {
            continue;
        }
        let tok = &toks[i];
        if ctx.is_test_line(tok.line) {
            continue;
        }
        out.push(Diagnostic::new(
            "wall-clock",
            Severity::Warning,
            &ctx.rel,
            tok.line,
            tok.col,
            format!(
                "`{name}::…` wall-clock read inside a deterministic seeded module; \
                 derive time from the seed/op index, or justify with \
                 `// analyzer: allow(wall-clock) — reason`"
            ),
        ));
    }
}
