//! Structured diagnostics and the machine-readable JSON report.

use std::fmt;

/// How bad a finding is. `Error` always fails the run; `Warning` fails
/// it only under `--deny warnings` (the CI configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Invariant violation that should gate merges via `--deny warnings`.
    Warning,
    /// Violation that fails the run unconditionally.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: rule id, severity, span, and message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable rule id (see [`crate::rules::RULE_IDS`]).
    pub rule: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation with the expected fix.
    pub message: String,
}

impl Diagnostic {
    /// Convenience constructor.
    pub fn new(
        rule: &'static str,
        severity: Severity,
        file: &str,
        line: u32,
        col: u32,
        message: String,
    ) -> Self {
        Self {
            rule,
            severity,
            file: file.to_string(),
            line,
            col,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}:{}:{} — {}",
            self.severity, self.rule, self.file, self.line, self.col, self.message
        )
    }
}

/// Render the whole run as a JSON document. Hand-rolled (the analyzer is
/// dependency-free by design); strings are escaped per RFC 8259.
pub fn to_json(diags: &[Diagnostic], files_checked: usize, suppressed: usize) -> String {
    let mut s = String::with_capacity(256 + diags.len() * 160);
    s.push_str("{\n");
    s.push_str("  \"version\": 1,\n");
    s.push_str(&format!("  \"files_checked\": {files_checked},\n"));
    s.push_str(&format!("  \"suppressed\": {suppressed},\n"));
    s.push_str(&format!(
        "  \"errors\": {},\n",
        diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    ));
    s.push_str(&format!(
        "  \"warnings\": {},\n",
        diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    ));
    s.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        s.push_str(&format!("\"rule\": {}, ", json_str(d.rule)));
        s.push_str(&format!(
            "\"severity\": {}, ",
            json_str(&d.severity.to_string())
        ));
        s.push_str(&format!("\"file\": {}, ", json_str(&d.file)));
        s.push_str(&format!("\"line\": {}, ", d.line));
        s.push_str(&format!("\"column\": {}, ", d.col));
        s.push_str(&format!("\"message\": {}", json_str(&d.message)));
        s.push('}');
    }
    if !diags.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

fn json_str(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let diags = vec![Diagnostic::new(
            "panic-path",
            Severity::Warning,
            "crates/rpc/src/pool.rs",
            212,
            14,
            "said \"no\"\nand a tab\there".to_string(),
        )];
        let json = to_json(&diags, 42, 3);
        assert!(json.contains("\"files_checked\": 42"));
        assert!(json.contains("\"suppressed\": 3"));
        assert!(json.contains("\"warnings\": 1"));
        assert!(json.contains(r#"\"no\"\nand a tab\there"#));
        assert!(json.contains("\"rule\": \"panic-path\""));
    }

    #[test]
    fn display_renders_span() {
        let d = Diagnostic::new("wall-clock", Severity::Error, "a.rs", 3, 7, "m".into());
        assert_eq!(d.to_string(), "error[wall-clock]: a.rs:3:7 — m");
    }
}
