//! Per-file analysis context: lexed tokens plus the derived facts every
//! rule needs — which lines are test code, which lines carry an
//! `// analyzer: allow(rule) — reason` suppression, where the
//! `// SAFETY:` and `// ordering:` justification comments sit.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{lex, Lexed, TokKind};
use crate::rules::RULE_IDS;
use std::collections::{BTreeMap, BTreeSet};

/// The marker that introduces a suppression comment.
pub const ALLOW_MARKER: &str = "analyzer: allow(";

/// One parsed `// analyzer: allow(rule) — reason` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The suppressed rule id.
    pub rule: String,
    /// The line the suppression covers (the comment's own line for a
    /// trailing comment, otherwise the next line with code on it).
    pub covers: u32,
    /// Line the comment itself is on (for diagnostics).
    pub line: u32,
    /// Set once a diagnostic is actually suppressed; unused allows are
    /// reported so stale suppressions don't accumulate.
    pub used: std::cell::Cell<bool>,
}

/// Everything the rules need to know about one source file.
pub struct FileCtx {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Name of the crate directory the file belongs to (`rpc`,
    /// `telemetry`, …; the workspace root package is `.`).
    pub crate_name: String,
    /// Token/comment stream.
    pub lx: Lexed,
    /// `test_lines[line]` is true when the 1-based `line` is inside a
    /// `#[cfg(test)]` module, a `#[test]` function, or a test-only file.
    pub test_lines: Vec<bool>,
    /// Parsed suppression comments.
    pub allows: Vec<Allow>,
    /// Lines justified by an `// ordering: reason` comment.
    pub ordering_justified: BTreeSet<u32>,
    /// Lines covered by a `SAFETY:` comment (the line after the comment
    /// and, for trailing comments, the comment's own line).
    pub safety_covered: BTreeSet<u32>,
}

impl FileCtx {
    /// Lexes `src` and derives the context. Malformed suppression
    /// comments are reported into `diags` under the `suppression` rule.
    pub fn new(rel: &str, crate_name: &str, src: &str, diags: &mut Vec<Diagnostic>) -> Self {
        let lx = lex(src);
        let line_has_code = line_has_code(&lx);
        let test_lines = test_lines(&lx, rel);
        let mut ctx = Self {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            lx,
            test_lines,
            allows: Vec::new(),
            ordering_justified: BTreeSet::new(),
            safety_covered: BTreeSet::new(),
        };
        ctx.scan_comments(&line_has_code, diags);
        ctx
    }

    fn scan_comments(&mut self, line_has_code: &[bool], diags: &mut Vec<Diagnostic>) {
        for c in &self.lx.comments {
            let covers = covered_line(c.line, c.end_line, line_has_code);
            if let Some(rest) = c.text.strip_prefix(ALLOW_MARKER) {
                match parse_allow(rest) {
                    Ok(rule) => {
                        if !RULE_IDS.contains(&rule.as_str()) {
                            diags.push(Diagnostic::new(
                                "suppression",
                                Severity::Warning,
                                &self.rel,
                                c.line,
                                1,
                                format!("allow names unknown rule `{rule}`"),
                            ));
                        } else {
                            self.allows.push(Allow {
                                rule,
                                covers,
                                line: c.line,
                                used: std::cell::Cell::new(false),
                            });
                        }
                    }
                    Err(why) => diags.push(Diagnostic::new(
                        "suppression",
                        Severity::Warning,
                        &self.rel,
                        c.line,
                        1,
                        why,
                    )),
                }
            } else if let Some(rest) = c.text.strip_prefix("ordering:") {
                if rest.trim().is_empty() {
                    diags.push(Diagnostic::new(
                        "suppression",
                        Severity::Warning,
                        &self.rel,
                        c.line,
                        1,
                        "`// ordering:` justification has no reason".to_string(),
                    ));
                } else {
                    self.ordering_justified.insert(covers);
                }
            } else if c.text.starts_with("SAFETY:") || c.text.starts_with("Safety:") {
                self.safety_covered.insert(covers);
                // A SAFETY comment directly above an `unsafe` line also
                // covers multi-line comment blocks that end right above it.
                self.safety_covered.insert(c.end_line + 1);
            }
        }
    }

    /// True when `line` is suppressed for `rule`; marks the allow used.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        let mut hit = false;
        for a in &self.allows {
            if a.rule == rule && a.covers == line {
                a.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// True when the 1-based `line` is inside test-only code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }
}

/// Parses the tail of an allow comment: `rule-id) — reason`.
fn parse_allow(rest: &str) -> Result<String, String> {
    let Some(close) = rest.find(')') else {
        return Err("malformed allow: missing `)` after rule id".to_string());
    };
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':'));
    if reason.trim().is_empty() {
        return Err(format!(
            "allow({rule}) has no reason; write `// analyzer: allow({rule}) — why this is sound`"
        ));
    }
    Ok(rule)
}

/// Which line a comment's justification/suppression applies to: its own
/// line when code precedes it there (trailing comment), otherwise the
/// next line that has code.
fn covered_line(line: u32, end_line: u32, line_has_code: &[bool]) -> u32 {
    if line_has_code.get(line as usize).copied().unwrap_or(false) {
        return line;
    }
    let mut l = end_line + 1;
    while (l as usize) < line_has_code.len() {
        if line_has_code[l as usize] {
            return l;
        }
        l += 1;
    }
    end_line + 1
}

fn line_has_code(lx: &Lexed) -> Vec<bool> {
    let mut v = vec![false; lx.lines as usize + 2];
    for t in &lx.tokens {
        if let Some(slot) = v.get_mut(t.line as usize) {
            *slot = true;
        }
    }
    v
}

/// Marks lines belonging to `#[cfg(test)]` items, `#[test]` functions,
/// and whole test-only files (anything under a `tests/` or `benches/`
/// directory).
fn test_lines(lx: &Lexed, rel: &str) -> Vec<bool> {
    let len = lx.lines as usize + 2;
    let path_is_test = rel.split('/').any(|seg| seg == "tests" || seg == "benches");
    if path_is_test {
        return vec![true; len];
    }
    let mut v = vec![false; len];
    let toks = &lx.tokens;
    let mut i = 0;
    while i < toks.len() {
        if let Some((attr_end, is_test_attr)) = attribute_at(toks, i) {
            if is_test_attr {
                if let Some((start_line, end_line)) = item_body_span(toks, attr_end) {
                    let from = toks[i].line.min(start_line) as usize;
                    let to = (end_line as usize).min(len - 1);
                    for flag in &mut v[from..=to] {
                        *flag = true;
                    }
                }
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    v
}

/// If `toks[i]` starts an attribute (`#[...]` or `#![...]`), returns the
/// index one past its closing `]` and whether it marks test code
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` — but not
/// `#[cfg(not(test))]`).
fn attribute_at(toks: &[crate::lexer::Tok], i: usize) -> Option<(usize, bool)> {
    if toks.get(i)?.kind != TokKind::Punct('#') {
        return None;
    }
    let mut j = i + 1;
    if toks.get(j).map(|t| &t.kind) == Some(&TokKind::Punct('!')) {
        j += 1;
    }
    if toks.get(j)?.kind != TokKind::Punct('[') {
        return None;
    }
    let mut depth = 0usize;
    let mut saw_test = false;
    let mut saw_cfg = false;
    let mut saw_not = false;
    let mut plain_test = false;
    let body_start = j + 1;
    while let Some(t) = toks.get(j) {
        match &t.kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Ident(name) => match name.as_str() {
                "test" => {
                    saw_test = true;
                    if j == body_start {
                        plain_test = true;
                    }
                }
                "cfg" => saw_cfg = true,
                "not" => saw_not = true,
                _ => {}
            },
            _ => {}
        }
        j += 1;
    }
    let is_test = plain_test || (saw_cfg && saw_test && !saw_not);
    Some((j + 1, is_test))
}

/// Finds the `{ … }` body of the item following an attribute and returns
/// its (start_line, end_line). Skips over further attributes and
/// modifiers. Returns `None` for bodiless items (`mod tests;`).
fn item_body_span(toks: &[crate::lexer::Tok], mut i: usize) -> Option<(u32, u32)> {
    // Skip any further attributes.
    while let Some((next, _)) = attribute_at(toks, i) {
        i = next;
    }
    let start_line = toks.get(i)?.line;
    // Find the opening brace of the item body; `;` first means no body.
    let mut j = i;
    loop {
        match &toks.get(j)?.kind {
            TokKind::Punct('{') => break,
            TokKind::Punct(';') => return None,
            _ => j += 1,
        }
    }
    let mut depth = 0usize;
    while let Some(t) = toks.get(j) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((start_line, t.line));
                }
            }
            _ => {}
        }
        j += 1;
    }
    Some((start_line, toks.last()?.line))
}

/// After all rules ran, reports allows that never suppressed anything.
pub fn report_unused_allows(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    for a in &ctx.allows {
        if !a.used.get() {
            diags.push(Diagnostic::new(
                "suppression",
                Severity::Warning,
                &ctx.rel,
                a.line,
                1,
                format!(
                    "unused allow({}) — nothing on line {} fires that rule",
                    a.rule, a.covers
                ),
            ));
        }
    }
}

/// Groups tokens by line for rules that need per-line scans.
pub fn tokens_by_line(lx: &Lexed) -> BTreeMap<u32, Vec<usize>> {
    let mut map: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, t) in lx.tokens.iter().enumerate() {
        map.entry(t.line).or_default().push(i);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> (FileCtx, Vec<Diagnostic>) {
        let mut diags = Vec::new();
        let c = FileCtx::new("crates/x/src/lib.rs", "x", src, &mut diags);
        (c, diags)
    }

    #[test]
    fn cfg_test_module_lines_are_test() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n";
        let (c, _) = ctx(src);
        assert!(!c.is_test_line(1));
        assert!(c.is_test_line(2));
        assert!(c.is_test_line(3));
        assert!(c.is_test_line(4));
        assert!(c.is_test_line(5));
        assert!(!c.is_test_line(6));
    }

    #[test]
    fn test_fn_with_extra_attrs_is_test() {
        let src = "#[test]\n#[ignore]\nfn flaky() {\n    body();\n}\nfn live() {}\n";
        let (c, _) = ctx(src);
        assert!(c.is_test_line(3));
        assert!(c.is_test_line(4));
        assert!(!c.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let src = "#[cfg(not(test))]\nfn live() {\n    body();\n}\n";
        let (c, _) = ctx(src);
        assert!(!c.is_test_line(2));
        assert!(!c.is_test_line(3));
    }

    #[test]
    fn trailing_and_preceding_allow_scopes() {
        let src = "\
// analyzer: allow(panic-path) — startup-only
let a = x.unwrap();
let b = y.unwrap(); // analyzer: allow(panic-path) — also fine
let c = z.unwrap();
";
        let (c, diags) = ctx(src);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(c.is_allowed("panic-path", 2));
        assert!(c.is_allowed("panic-path", 3));
        assert!(!c.is_allowed("panic-path", 4));
    }

    #[test]
    fn allow_without_reason_is_reported() {
        let (_, diags) = ctx("// analyzer: allow(panic-path)\nlet a = x.unwrap();\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "suppression");
    }

    #[test]
    fn allow_with_unknown_rule_is_reported() {
        let (_, diags) = ctx("// analyzer: allow(no-such-rule) — whatever\nlet a = 1;\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_allow_is_reported() {
        let (c, mut diags) = ctx("// analyzer: allow(panic-path) — nothing here\nlet a = 1;\n");
        report_unused_allows(&c, &mut diags);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unused allow"));
    }

    #[test]
    fn ordering_and_safety_comments_cover_next_line() {
        let src = "\
// ordering: counter is monotonic, no data guarded
x.fetch_add(1, Ordering::Relaxed);
// SAFETY: index checked above
unsafe { body() }
";
        let (c, diags) = ctx(src);
        assert!(diags.is_empty());
        assert!(c.ordering_justified.contains(&2));
        assert!(c.safety_covered.contains(&4));
    }

    #[test]
    fn files_under_tests_dir_are_all_test() {
        let mut diags = Vec::new();
        let c = FileCtx::new("tests/integration.rs", ".", "fn x() {}\n", &mut diags);
        assert!(c.is_test_line(1));
    }
}
