//! A minimal Rust lexer — just enough fidelity for invariant linting.
//!
//! The analyzer never parses Rust properly; it tokenizes. That is enough
//! to tell an identifier in code from the same word inside a string
//! literal or a comment, which is the precision the rule engine needs:
//! `Ordering::Relaxed` in a doc example must not fire the atomics audit,
//! and `"unwrap"` in a diagnostic message must not fire the panic-path
//! lint. Comments are captured separately (with spans) because several
//! rules key off them: `// SAFETY:` justifications, `// ordering:`
//! justifications, and `// analyzer: allow(...)` suppressions.

/// What a token is. Only the distinctions the rules need are kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are stripped of `r#`).
    Ident(String),
    /// String literal contents, quotes stripped, escapes left as written
    /// (covers `"…"`, `b"…"`, `r"…"`, `r#"…"#` and deeper raw forms).
    Str(String),
    /// A single punctuation character (`::` is two `Punct(':')` tokens).
    Punct(char),
    /// A lifetime such as `'a` or `'_`.
    Lifetime,
    /// A character or byte literal.
    Char,
    /// A numeric literal (value not interpreted).
    Num,
}

/// A token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind and payload.
    pub kind: TokKind,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

/// A comment with its normalized text and line span.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text with the leading `//`/`/*`/doc markers and
    /// surrounding whitespace stripped.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// Total number of lines in the file.
    pub lines: u32,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if pred(c) {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: unexpected bytes
/// become `Punct` tokens, unterminated literals run to end of file.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                let raw = cur.eat_while(|c| c != '\n');
                out.comments.push(Comment {
                    text: normalize_comment(&raw),
                    line,
                    end_line: line,
                });
            }
            '/' if cur.peek(1) == Some('*') => {
                let raw = block_comment(&mut cur);
                out.comments.push(Comment {
                    text: normalize_comment(&raw),
                    line,
                    end_line: cur.line,
                });
            }
            '"' => {
                cur.bump();
                let s = string_body(&mut cur);
                out.tokens.push(Tok {
                    kind: TokKind::Str(s),
                    line,
                    col,
                });
            }
            'b' if cur.peek(1) == Some('"') => {
                cur.bump();
                cur.bump();
                let s = string_body(&mut cur);
                out.tokens.push(Tok {
                    kind: TokKind::Str(s),
                    line,
                    col,
                });
            }
            'b' if cur.peek(1) == Some('\'') => {
                cur.bump();
                cur.bump();
                char_body(&mut cur);
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    line,
                    col,
                });
            }
            'r' | 'b'
                if raw_string_hashes(&cur, if c == 'b' { 1 } else { 0 }).is_some()
                    && (c == 'r' || cur.peek(1) == Some('r')) =>
            {
                let skip = if c == 'b' { 2 } else { 1 };
                let hashes = raw_string_hashes(&cur, skip - 1).unwrap_or(0);
                for _ in 0..skip + hashes + 1 {
                    cur.bump(); // the `r`/`br`, the `#`s, and the opening quote
                }
                let s = raw_string_body(&mut cur, hashes);
                out.tokens.push(Tok {
                    kind: TokKind::Str(s),
                    line,
                    col,
                });
            }
            'r' if cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) => {
                cur.bump();
                cur.bump();
                let name = cur.eat_while(is_ident_continue);
                out.tokens.push(Tok {
                    kind: TokKind::Ident(name),
                    line,
                    col,
                });
            }
            '\'' => {
                // Lifetime (`'a`, `'_`) vs char literal (`'a'`, `'\n'`).
                if cur.peek(1).is_some_and(is_ident_start) && cur.peek(2) != Some('\'') {
                    cur.bump();
                    cur.eat_while(is_ident_continue);
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        line,
                        col,
                    });
                } else {
                    cur.bump();
                    char_body(&mut cur);
                    out.tokens.push(Tok {
                        kind: TokKind::Char,
                        line,
                        col,
                    });
                }
            }
            _ if is_ident_start(c) => {
                let name = cur.eat_while(is_ident_continue);
                out.tokens.push(Tok {
                    kind: TokKind::Ident(name),
                    line,
                    col,
                });
            }
            _ if c.is_ascii_digit() => {
                number_body(&mut cur);
                out.tokens.push(Tok {
                    kind: TokKind::Num,
                    line,
                    col,
                });
            }
            _ => {
                cur.bump();
                out.tokens.push(Tok {
                    kind: TokKind::Punct(c),
                    line,
                    col,
                });
            }
        }
    }
    out.lines = cur.line;
    out
}

/// `r"`, `r#"`, `br##"` … — returns the number of `#`s if the cursor
/// (offset by `skip` to step over `r`/`br`) sits on a raw-string opener.
fn raw_string_hashes(cur: &Cursor, skip: usize) -> Option<usize> {
    let mut k = skip + 1; // first char after the `r`
    let mut hashes = 0;
    loop {
        match cur.peek(k) {
            Some('#') => {
                hashes += 1;
                k += 1;
            }
            Some('"') => return Some(hashes),
            _ => return None,
        }
    }
}

fn raw_string_body(cur: &mut Cursor, hashes: usize) -> String {
    let mut s = String::new();
    while let Some(c) = cur.bump() {
        if c == '"' {
            let closed = (0..hashes).all(|k| cur.peek(k) == Some('#'));
            if closed {
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
        s.push(c);
    }
    s
}

fn string_body(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                s.push('\\');
                if let Some(escaped) = cur.bump() {
                    s.push(escaped);
                }
            }
            '"' => break,
            _ => s.push(c),
        }
    }
    s
}

/// Consumes a char/byte literal body up to and including the closing `'`.
fn char_body(cur: &mut Cursor) {
    match cur.bump() {
        Some('\\') if cur.bump() == Some('u') && cur.peek(0) == Some('{') => {
            while let Some(c) = cur.bump() {
                if c == '}' {
                    break;
                }
            }
        }
        Some('\\') => {}      // simple escape, already consumed above
        Some('\'') => return, // empty literal `''` (invalid Rust, tolerated)
        _ => {}
    }
    if cur.peek(0) == Some('\'') {
        cur.bump();
    }
}

fn number_body(cur: &mut Cursor) {
    cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    // `1.5` continues the number; `0..2` and `1.method()` do not.
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    }
}

fn block_comment(cur: &mut Cursor) -> String {
    cur.bump(); // `/`
    cur.bump(); // `*`
    let mut depth = 1usize;
    let mut s = String::new();
    while let Some(c) = cur.bump() {
        if c == '/' && cur.peek(0) == Some('*') {
            cur.bump();
            depth += 1;
            s.push_str("/*");
        } else if c == '*' && cur.peek(0) == Some('/') {
            cur.bump();
            depth -= 1;
            if depth == 0 {
                break;
            }
            s.push_str("*/");
        } else {
            s.push(c);
        }
    }
    s
}

/// Strips comment markers: `//`, `///`, `//!`, leading `*`s from block
/// comment bodies, and surrounding whitespace.
fn normalize_comment(raw: &str) -> String {
    let mut t = raw;
    while let Some(rest) = t.strip_prefix('/') {
        t = rest;
    }
    t = t.strip_prefix('!').unwrap_or(t);
    let t = t.trim();
    let t = t.strip_prefix('*').map(str::trim).unwrap_or(t);
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_idents() {
        let src = r##"
            // unwrap in a comment
            /* Ordering::SeqCst in a block /* nested */ comment */
            let x = "unwrap() and Ordering::Relaxed in a string";
            let y = r#"raw "quoted" unsafe"#;
            call(x);
        "##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "let", "y", "call", "x"]);
    }

    #[test]
    fn string_values_are_captured() {
        let toks = lex(r#"counter("rpc.requests")"#).tokens;
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str("rpc.requests".into())));
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        let toks = lex(r###"let a = r#"has "quotes""#; let b = b"bytes"; let c = br"raw";"###);
        let strs: Vec<_> = toks
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Str(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["has \"quotes\"", "bytes", "raw"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn escaped_chars_and_unicode() {
        let toks = lex(r"let c = '\''; let n = '\n'; let u = '\u{1F600}'; next");
        assert!(toks
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident("next".into())));
    }

    #[test]
    fn comment_positions_and_text() {
        let lx = lex("let a = 1; // trailing note\n/// doc\nfn f() {}\n");
        assert_eq!(lx.comments.len(), 2);
        assert_eq!(lx.comments[0].text, "trailing note");
        assert_eq!(lx.comments[0].line, 1);
        assert_eq!(lx.comments[1].text, "doc");
        assert_eq!(lx.comments[1].line, 2);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = lex("for i in 0..10 { f(1.5, 0xFF, 1e9); }").tokens;
        let nums = toks.iter().filter(|t| t.kind == TokKind::Num).count();
        assert_eq!(nums, 5); // 0, 10, 1.5, 0xFF, 1e9
        let dots = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct('.'))
            .count();
        assert_eq!(dots, 2); // the `..` of the range
    }
}
