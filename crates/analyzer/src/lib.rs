//! `dcperf-analyzer` — the workspace invariant linter behind
//! `cargo analyze`.
//!
//! DCPerf's value is *trustworthy* numbers: the suite's cross-SKU
//! fidelity claims only hold while the substrate primitives — lock-free
//! counters, striped histograms, the breaker state machine, the RPC wire
//! format — stay correct under concurrency and don't silently drift.
//! This crate is a from-scratch, dependency-free static-analysis pass (a
//! lightweight Rust lexer plus a rule engine; no rustc plugin, works
//! offline) that walks the whole workspace and machine-enforces the
//! project invariants:
//!
//! * **atomics audit** — every `Ordering::…` use must match a per-module
//!   allowlist or carry an `// ordering: reason` justification;
//! * **metrics-schema conformance** — metric-name string literals at
//!   telemetry call sites must be declared in `telemetry::metrics`, and
//!   every declared constant must be referenced somewhere;
//! * **panic-path lint** — no `unwrap`/`expect`/`panic!` in non-test
//!   code of hot-path crates;
//! * **unsafe hygiene** — `unsafe` needs a `// SAFETY:` comment and
//!   unsafe-free crates need `#![forbid(unsafe_code)]`;
//! * **feature-gate & determinism hygiene** — gated `cfg` blocks only in
//!   crates declaring the feature, and no wall-clock reads in seeded
//!   deterministic modules.
//!
//! Findings are structured diagnostics with `file:line:col` spans,
//! severities, and stable rule ids, suppressible in source with
//! `// analyzer: allow(rule-id) — reason`. Because the analyzer lexes
//! text rather than compiling, `cfg`-gated code in *both* feature states
//! is covered in a single pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod diag;
pub mod lexer;
pub mod policy;
pub mod rules;
pub mod schema;
pub mod workspace;

use context::FileCtx;
use diag::{Diagnostic, Severity};
use lexer::TokKind;
use policy::Policy;
use rules::CrateUnsafeFacts;
use schema::MetricsSchema;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// The outcome of one analysis run.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Surviving diagnostics, sorted by file, line, column, rule.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files lexed and checked.
    pub files_checked: usize,
    /// Number of candidate findings silenced by in-source allows.
    pub suppressed: usize,
}

impl AnalysisReport {
    /// Count at the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Does the run fail? Errors always do; warnings only when denied.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.count(Severity::Error) > 0 || (deny_warnings && self.count(Severity::Warning) > 0)
    }
}

/// Runs the full analysis over the workspace at `root` under `policy`.
///
/// # Errors
///
/// Returns an IO error only when the workspace itself cannot be read;
/// per-file problems surface as diagnostics instead.
pub fn analyze(root: &Path, policy: &Policy) -> std::io::Result<AnalysisReport> {
    let ws = workspace::load(root)?;
    Ok(analyze_files(&ws, policy))
}

/// Runs the analysis over an already-loaded workspace (the fixture tests
/// point this at mini-workspaces).
pub fn analyze_files(ws: &workspace::Workspace, policy: &Policy) -> AnalysisReport {
    let mut diags: Vec<Diagnostic> = Vec::new();

    // Parse the metrics schema first; its absence is itself a finding.
    let schema_src = ws
        .files
        .iter()
        .find(|f| f.rel == policy.schema_path)
        .map(|f| f.src.as_str());
    let schema = match schema_src {
        Some(src) => MetricsSchema::parse(src),
        None => MetricsSchema::default(),
    };
    if schema.is_empty() {
        diags.push(Diagnostic::new(
            "metrics-schema",
            Severity::Error,
            &policy.schema_path,
            1,
            1,
            "metrics schema module is missing or declares no constants; every metric \
             name must be declared centrally"
                .to_string(),
        ));
    }

    // Per-file pass.
    let mut ctxs: Vec<FileCtx> = Vec::with_capacity(ws.files.len());
    let mut candidates: Vec<Diagnostic> = Vec::new();
    for f in &ws.files {
        let ctx = FileCtx::new(&f.rel, &f.crate_name, &f.src, &mut diags);
        rules::atomics_order(&ctx, policy, &mut candidates);
        rules::metrics_schema(&ctx, policy, &schema, &mut candidates);
        rules::panic_path(&ctx, policy, &mut candidates);
        rules::unsafe_comment(&ctx, &mut candidates);
        let declared = ws.features.get(&f.crate_name).cloned().unwrap_or_default();
        rules::feature_gate(&ctx, policy, &declared, &mut candidates);
        rules::wall_clock(&ctx, policy, &mut candidates);
        ctxs.push(ctx);
    }

    // Workspace pass: orphaned schema constants.
    if !schema.is_empty() {
        let usage: Vec<(String, BTreeSet<String>)> = ctxs
            .iter()
            .map(|ctx| {
                let mut mentions = BTreeSet::new();
                for t in &ctx.lx.tokens {
                    match &t.kind {
                        TokKind::Ident(s) => {
                            mentions.insert(s.clone());
                        }
                        TokKind::Str(s) => {
                            mentions.insert(s.clone());
                        }
                        _ => {}
                    }
                }
                (ctx.rel.clone(), mentions)
            })
            .collect();
        rules::metrics_orphan(&schema, &policy.schema_path, &usage, &mut candidates);
    }

    // Workspace pass: per-crate unsafe hygiene.
    let mut per_crate: BTreeMap<&str, CrateUnsafeFacts> = BTreeMap::new();
    for (ctx, f) in ctxs.iter().zip(&ws.files) {
        let entry = per_crate
            .entry(f.crate_name.as_str())
            .or_insert_with(|| CrateUnsafeFacts {
                crate_name: f.crate_name.clone(),
                has_unsafe: false,
                roots: Vec::new(),
            });
        let uses_unsafe = ctx
            .lx
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == "unsafe"));
        entry.has_unsafe |= uses_unsafe;
        if f.is_crate_root {
            entry.roots.push((
                f.rel.clone(),
                has_inner_lint(ctx, "forbid", "unsafe_code"),
                has_unsafe_op_lint(ctx),
            ));
        }
    }
    let facts: Vec<CrateUnsafeFacts> = per_crate.into_values().collect();
    rules::unsafe_forbid(&facts, &mut candidates);

    // Central suppression filter, then stale-allow reporting.
    let by_rel: BTreeMap<&str, &FileCtx> = ctxs.iter().map(|c| (c.rel.as_str(), c)).collect();
    let mut suppressed = 0usize;
    for d in candidates {
        let allowed = by_rel
            .get(d.file.as_str())
            .is_some_and(|ctx| ctx.is_allowed(d.rule, d.line));
        if allowed {
            suppressed += 1;
        } else {
            diags.push(d);
        }
    }
    for ctx in &ctxs {
        context::report_unused_allows(ctx, &mut diags);
    }

    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    AnalysisReport {
        diagnostics: diags,
        files_checked: ws.files.len(),
        suppressed,
    }
}

/// Does the file carry `#![<lint_level>(… <lint_name> …)]`-style inner
/// attribute tokens? Token-level scan: the lint level ident followed
/// within a few tokens by the lint name ident.
fn has_inner_lint(ctx: &FileCtx, level: &str, lint: &str) -> bool {
    let toks = &ctx.lx.tokens;
    for i in 0..toks.len() {
        if matches!(&toks[i].kind, TokKind::Ident(s) if s == level) {
            for t in toks.iter().skip(i + 1).take(4) {
                if matches!(&t.kind, TokKind::Ident(s) if s == lint) {
                    return true;
                }
            }
        }
    }
    false
}

fn has_unsafe_op_lint(ctx: &FileCtx) -> bool {
    ["deny", "forbid", "warn"]
        .iter()
        .any(|level| has_inner_lint(ctx, level, "unsafe_op_in_unsafe_fn"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use workspace::{Workspace, WorkspaceFile};

    fn mini_policy() -> Policy {
        Policy {
            hot_path_crates: vec!["hot".into()],
            deterministic_paths: vec!["crates/hot/src/det.rs".into()],
            ordering_allow: vec![],
            gated_features: vec!["fault-injection".into()],
            schema_path: "crates/tele/src/metrics.rs".into(),
        }
    }

    fn file(rel: &str, crate_name: &str, src: &str) -> WorkspaceFile {
        WorkspaceFile {
            rel: rel.into(),
            crate_name: crate_name.into(),
            src: src.into(),
            is_crate_root: rel.ends_with("lib.rs"),
        }
    }

    const SCHEMA: &str = r#"
        pub const GOOD_NAME: &str = "app.good";
        pub mod suffix {}
    "#;

    #[test]
    fn missing_schema_is_an_error() {
        let ws = Workspace::default();
        let report = analyze_files(&ws, &mini_policy());
        assert_eq!(report.count(Severity::Error), 1);
        assert!(report.failed(false));
    }

    #[test]
    fn end_to_end_over_in_memory_files() {
        let ws = Workspace {
            files: vec![
                file("crates/tele/src/metrics.rs", "tele", SCHEMA),
                file("crates/tele/src/lib.rs", "tele", "#![forbid(unsafe_code)]\n"),
                file(
                    "crates/hot/src/lib.rs",
                    "hot",
                    "#![forbid(unsafe_code)]\nfn f(x: Option<u8>) -> u8 {\n    t.counter(\"app.good\");\n    x.unwrap()\n}\n",
                ),
            ],
            features: Default::default(),
        };
        let report = analyze_files(&ws, &mini_policy());
        let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["panic-path"], "{:?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].line, 4);
        assert_eq!(report.files_checked, 3);
        assert!(report.failed(true));
        assert!(!report.failed(false));
    }
}
