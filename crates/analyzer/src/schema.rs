//! Parser for the central metrics schema module
//! (`crates/telemetry/src/metrics.rs`).
//!
//! The schema is ordinary Rust the analyzer reads structurally:
//!
//! * `pub const NAME: &str = "loadgen.completed";` — a fixed metric name;
//! * `pub const PREFIX_X: &str = "rpc.breaker";` — a prefix composable
//!   with any declared suffix (`rpc.breaker.rejected`, …);
//! * `pub const DYN_X: &str = "loadgen.endpoint";` — a dynamic prefix
//!   whose remaining segments are generated at runtime;
//! * consts inside `pub mod suffix { … }` — the suffix vocabulary.
//!
//! The declared-name set is: every fixed name, plus every
//! `prefix + "." + suffix` composition. Dynamic prefixes validate any
//! literal that extends them by at least one segment.

use crate::lexer::{lex, TokKind};
use std::collections::BTreeMap;

/// One declared constant in the schema module.
#[derive(Debug, Clone)]
pub struct SchemaConst {
    /// The Rust identifier (`LOADGEN_COMPLETED`).
    pub ident: String,
    /// The metric name or prefix it expands to.
    pub value: String,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// The parsed schema: fixed names, prefixes, dynamic prefixes, suffixes.
#[derive(Debug, Default)]
pub struct MetricsSchema {
    /// Fully-specified metric names.
    pub fixed: Vec<SchemaConst>,
    /// Composable prefixes (`PREFIX_*`).
    pub prefixes: Vec<SchemaConst>,
    /// Dynamic prefixes (`DYN_*`).
    pub dynamic: Vec<SchemaConst>,
    /// Suffix vocabulary (consts in `mod suffix`).
    pub suffixes: Vec<SchemaConst>,
}

impl MetricsSchema {
    /// Parses the schema from the source of the metrics module.
    pub fn parse(src: &str) -> Self {
        let lx = lex(src);
        let toks = &lx.tokens;
        let mut schema = Self::default();

        // Track whether we are inside `mod suffix { … }` via brace depth.
        let mut suffix_depth: Option<usize> = None;
        let mut depth = 0usize;

        let mut i = 0;
        while i < toks.len() {
            match &toks[i].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if suffix_depth.is_some_and(|d| depth < d) {
                        suffix_depth = None;
                    }
                }
                TokKind::Ident(kw) if kw == "mod" => {
                    if let Some(TokKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                        if name == "suffix" {
                            suffix_depth = Some(depth + 1);
                        }
                    }
                }
                TokKind::Ident(kw) if kw == "const" => {
                    // const IDENT : & str = "value" ;
                    if let Some(c) = parse_const(toks, i) {
                        let in_suffix = suffix_depth.is_some();
                        if in_suffix {
                            schema.suffixes.push(c);
                        } else if c.ident.starts_with("PREFIX_") {
                            schema.prefixes.push(c);
                        } else if c.ident.starts_with("DYN_") {
                            schema.dynamic.push(c);
                        } else {
                            schema.fixed.push(c);
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
        schema
    }

    /// Is `name` a declared metric name (fixed, or prefix+suffix)?
    pub fn contains(&self, name: &str) -> bool {
        if self.fixed.iter().any(|c| c.value == name) {
            return true;
        }
        self.prefixes.iter().any(|p| {
            name.strip_prefix(&p.value)
                .and_then(|rest| rest.strip_prefix('.'))
                .is_some_and(|suffix| self.suffixes.iter().any(|s| s.value == suffix))
        })
    }

    /// Is `name` a declared composable prefix?
    pub fn is_prefix(&self, name: &str) -> bool {
        self.prefixes.iter().any(|p| p.value == name)
    }

    /// Does `name` extend a declared dynamic prefix?
    pub fn matches_dynamic(&self, name: &str) -> bool {
        self.dynamic.iter().any(|d| {
            name.strip_prefix(&d.value)
                .is_some_and(|rest| rest.is_empty() || rest.starts_with('.'))
        })
    }

    /// Every declared const, keyed by identifier (for orphan detection).
    pub fn all_consts(&self) -> BTreeMap<&str, &SchemaConst> {
        self.fixed
            .iter()
            .chain(&self.prefixes)
            .chain(&self.dynamic)
            .chain(&self.suffixes)
            .map(|c| (c.ident.as_str(), c))
            .collect()
    }

    /// True when the schema declares nothing (missing or empty module).
    pub fn is_empty(&self) -> bool {
        self.fixed.is_empty()
            && self.prefixes.is_empty()
            && self.dynamic.is_empty()
            && self.suffixes.is_empty()
    }
}

/// Matches `const IDENT: &str = "value"` starting at the `const` token.
fn parse_const(toks: &[crate::lexer::Tok], i: usize) -> Option<SchemaConst> {
    let ident = match &toks.get(i + 1)?.kind {
        TokKind::Ident(name) => name.clone(),
        _ => return None,
    };
    // Walk forward to the `=` then expect a string literal.
    let mut j = i + 2;
    while j < toks.len() && j < i + 8 {
        if toks[j].kind == TokKind::Punct('=') {
            if let Some(TokKind::Str(v)) = toks.get(j + 1).map(|t| &t.kind) {
                return Some(SchemaConst {
                    ident,
                    value: v.clone(),
                    line: toks[i].line,
                });
            }
            return None;
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        //! schema
        pub const LOADGEN_COMPLETED: &str = "loadgen.completed";
        pub const PREFIX_RPC: &str = "rpc";
        pub const DYN_CHAOS: &str = "chaos";
        pub mod suffix {
            pub const REQUESTS: &str = "requests";
            pub const REJECTED: &str = "rejected";
        }
        pub fn scoped(prefix: &str, suffix: &str) -> String {
            format!("{prefix}.{suffix}")
        }
    "#;

    #[test]
    fn classifies_declarations() {
        let s = MetricsSchema::parse(SRC);
        assert_eq!(s.fixed.len(), 1);
        assert_eq!(s.prefixes.len(), 1);
        assert_eq!(s.dynamic.len(), 1);
        assert_eq!(s.suffixes.len(), 2);
    }

    #[test]
    fn membership_rules() {
        let s = MetricsSchema::parse(SRC);
        assert!(s.contains("loadgen.completed"));
        assert!(s.contains("rpc.requests"));
        assert!(s.contains("rpc.rejected"));
        assert!(!s.contains("rpc.reqeusts"));
        assert!(!s.contains("loadgen.complete"));
        assert!(s.is_prefix("rpc"));
        assert!(s.matches_dynamic("chaos.store.anything"));
        assert!(!s.matches_dynamic("chaostore"));
    }
}
