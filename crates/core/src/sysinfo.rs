//! Host information probing.
//!
//! DCPerf reports "key information about the system being tested (e.g., CPU
//! model, memory size, and kernel version)" with every benchmark result
//! (§3.1). [`SystemInfo`] gathers that from `/proc` and `/sys`, degrading
//! gracefully on platforms where those files are absent.

use serde::{Deserialize, Serialize};

/// A description of the machine a benchmark ran on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemInfo {
    /// Host name, or `"unknown"`.
    pub hostname: String,
    /// CPU model string from `/proc/cpuinfo`, or `"unknown"`.
    pub cpu_model: String,
    /// Number of logical CPUs visible to this process.
    pub logical_cores: usize,
    /// Total memory in kilobytes from `/proc/meminfo`, or 0.
    pub mem_total_kb: u64,
    /// Kernel release string, or `"unknown"`.
    pub kernel_version: String,
}

impl SystemInfo {
    /// Probes the current host.
    pub fn probe() -> Self {
        Self {
            hostname: read_trimmed("/proc/sys/kernel/hostname").unwrap_or_else(|| "unknown".into()),
            cpu_model: probe_cpu_model().unwrap_or_else(|| "unknown".into()),
            logical_cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            mem_total_kb: probe_mem_total_kb().unwrap_or(0),
            kernel_version: read_trimmed("/proc/sys/kernel/osrelease")
                .unwrap_or_else(|| "unknown".into()),
        }
    }
}

fn read_trimmed(path: &str) -> Option<String> {
    std::fs::read_to_string(path)
        .ok()
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
}

fn probe_cpu_model() -> Option<String> {
    let cpuinfo = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    for line in cpuinfo.lines() {
        // x86 reports "model name"; many ARM kernels report "Processor"
        // or only "CPU part".
        if let Some(rest) = line.strip_prefix("model name") {
            return Some(rest.trim_start_matches([' ', '\t', ':']).trim().to_owned());
        }
    }
    None
}

fn probe_mem_total_kb() -> Option<u64> {
    let meminfo = std::fs::read_to_string("/proc/meminfo").ok()?;
    for line in meminfo.lines() {
        if let Some(rest) = line.strip_prefix("MemTotal:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_does_not_panic_and_reports_cores() {
        let info = SystemInfo::probe();
        assert!(info.logical_cores >= 1);
        assert!(!info.hostname.is_empty());
    }

    #[test]
    fn probe_round_trips_through_json() {
        let info = SystemInfo::probe();
        let json = serde_json::to_string(&info).unwrap();
        let back: SystemInfo = serde_json::from_str(&json).unwrap();
        assert_eq!(info, back);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_probe_finds_memory_and_kernel() {
        let info = SystemInfo::probe();
        assert!(info.mem_total_kb > 0, "MemTotal should parse on Linux");
        assert_ne!(info.kernel_version, "unknown");
    }
}
