//! The DCPerf-RS automation framework.
//!
//! This crate reproduces the framework half of DCPerf (§3.1 of the paper):
//! the high-level `install`/`run` driver, per-benchmark JSON result
//! reporting, normalized scoring against a baseline machine with a
//! geometric-mean overall score, and the extensible *hooks* system that
//! samples CPU utilization, memory, network, frequency, and power while a
//! benchmark runs.
//!
//! The framework is deliberately independent of the benchmarks themselves:
//! anything implementing [`Benchmark`] can be registered in a [`Suite`] and
//! driven through the same install → run → report pipeline, exactly as new
//! benchmarks can be added to DCPerf without touching its core.
//!
//! # Examples
//!
//! A minimal benchmark and a one-benchmark suite run:
//!
//! ```
//! use dcperf_core::{
//!     Benchmark, BenchmarkReport, Error, ReportBuilder, RunConfig, RunContext, Suite,
//!     WorkloadCategory,
//! };
//!
//! struct Sleepy;
//!
//! impl Benchmark for Sleepy {
//!     fn name(&self) -> &str {
//!         "sleepy"
//!     }
//!     fn category(&self) -> WorkloadCategory {
//!         WorkloadCategory::Web
//!     }
//!     fn description(&self) -> &str {
//!         "does almost nothing"
//!     }
//!     fn run(&self, ctx: &mut RunContext) -> Result<BenchmarkReport, Error> {
//!         let mut report = ReportBuilder::new(self.name());
//!         report.metric("requests_per_second", 123.0);
//!         Ok(report.finish(ctx))
//!     }
//! }
//!
//! let mut suite = Suite::new();
//! suite.register(Box::new(Sleepy));
//! suite.set_baseline("sleepy", "requests_per_second", 100.0);
//! let summary = suite.run_all(&RunConfig::smoke_test())?;
//! assert!((summary.overall_score() - 1.23).abs() < 1e-9);
//! # Ok::<(), Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmark;
pub mod error;
pub mod hooks;
pub mod report;
pub mod score;
pub mod slo;
pub mod suite;
pub mod sysinfo;

pub use benchmark::{Benchmark, RunConfig, RunContext, Scale, WorkloadCategory};
pub use error::Error;
pub use hooks::{
    CopyMoveHook, CpuFreqHook, CpuUtilHook, Hook, HookManager, HookReport, MemStatHook,
    NetStatHook, PowerHook, TimeSeries, TopdownHook,
};
pub use report::{BenchmarkReport, MetricValue, ReportBuilder};
pub use score::{BaselineTable, ScoreCard};
pub use slo::{SloOutcome, SloSpec};
pub use suite::{Suite, SuiteSummary};
pub use sysinfo::SystemInfo;
