//! Service-level objectives.
//!
//! DCPerf enforces "the same service level objectives (SLOs) used in
//! production, such as maximizing throughput while maintaining the
//! 95th-percentile latency under 500ms for our newsfeed benchmark" (§2.2).

use dcperf_util::Histogram;
use serde::{Deserialize, Serialize};

/// A latency/error-rate SLO a benchmark must satisfy while measuring peak
/// throughput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Maximum 95th-percentile latency in milliseconds, if constrained.
    pub p95_ms: Option<f64>,
    /// Maximum 99th-percentile latency in milliseconds, if constrained.
    pub p99_ms: Option<f64>,
    /// Maximum fraction of failed requests, if constrained.
    pub max_error_rate: Option<f64>,
}

impl SloSpec {
    /// An SLO bounding only P95 latency (FeedSim's form).
    pub fn p95_under_ms(ms: f64) -> Self {
        Self {
            p95_ms: Some(ms),
            p99_ms: None,
            max_error_rate: None,
        }
    }

    /// An unconstrained SLO (always satisfied).
    pub fn unconstrained() -> Self {
        Self {
            p95_ms: None,
            p99_ms: None,
            max_error_rate: None,
        }
    }

    /// Adds a P99 bound (builder style).
    pub fn with_p99_ms(mut self, ms: f64) -> Self {
        self.p99_ms = Some(ms);
        self
    }

    /// Adds an error-rate bound (builder style).
    pub fn with_max_error_rate(mut self, rate: f64) -> Self {
        self.max_error_rate = Some(rate);
        self
    }

    /// Evaluates the SLO against a latency histogram (nanosecond samples)
    /// and an observed error rate.
    pub fn evaluate(&self, latency_ns: &Histogram, error_rate: f64) -> SloOutcome {
        let mut violations = Vec::new();
        let to_ms = |ns: u64| ns as f64 / 1e6;
        if let Some(limit) = self.p95_ms {
            let got = to_ms(latency_ns.p95());
            if got > limit {
                violations.push(format!("p95 {got:.2}ms > {limit:.2}ms"));
            }
        }
        if let Some(limit) = self.p99_ms {
            let got = to_ms(latency_ns.p99());
            if got > limit {
                violations.push(format!("p99 {got:.2}ms > {limit:.2}ms"));
            }
        }
        if let Some(limit) = self.max_error_rate {
            if error_rate > limit {
                violations.push(format!("error rate {error_rate:.4} > {limit:.4}"));
            }
        }
        if violations.is_empty() {
            SloOutcome::Met
        } else {
            SloOutcome::Violated(violations)
        }
    }
}

impl std::fmt::Display for SloSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        if let Some(ms) = self.p95_ms {
            parts.push(format!("p95<={ms}ms"));
        }
        if let Some(ms) = self.p99_ms {
            parts.push(format!("p99<={ms}ms"));
        }
        if let Some(r) = self.max_error_rate {
            parts.push(format!("errors<={r}"));
        }
        if parts.is_empty() {
            f.write_str("unconstrained")
        } else {
            f.write_str(&parts.join(", "))
        }
    }
}

/// The result of evaluating an [`SloSpec`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloOutcome {
    /// All constraints satisfied.
    Met,
    /// One or more constraints violated, with descriptions.
    Violated(Vec<String>),
}

impl SloOutcome {
    /// Whether the SLO was met.
    pub fn is_met(&self) -> bool {
        matches!(self, SloOutcome::Met)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_with_p95_ms(ms: u64) -> Histogram {
        let mut h = Histogram::new();
        // 94 fast samples and 6 at the target puts the p95 rank in the
        // slow bucket, so p95 ≈ `ms`.
        for _ in 0..94 {
            h.record(1_000_000); // 1 ms
        }
        for _ in 0..6 {
            h.record(ms * 1_000_000);
        }
        h
    }

    #[test]
    fn unconstrained_always_met() {
        let slo = SloSpec::unconstrained();
        let h = hist_with_p95_ms(10_000);
        assert!(slo.evaluate(&h, 1.0).is_met());
    }

    #[test]
    fn p95_violation_detected() {
        let slo = SloSpec::p95_under_ms(500.0);
        let ok = hist_with_p95_ms(100);
        let bad = hist_with_p95_ms(900);
        assert!(slo.evaluate(&ok, 0.0).is_met());
        let outcome = slo.evaluate(&bad, 0.0);
        assert!(!outcome.is_met());
        if let SloOutcome::Violated(v) = outcome {
            assert!(v[0].contains("p95"));
        }
    }

    #[test]
    fn error_rate_violation_detected() {
        let slo = SloSpec::unconstrained().with_max_error_rate(0.01);
        let h = hist_with_p95_ms(1);
        assert!(slo.evaluate(&h, 0.005).is_met());
        assert!(!slo.evaluate(&h, 0.02).is_met());
    }

    #[test]
    fn multiple_violations_all_reported() {
        let slo = SloSpec::p95_under_ms(1.0)
            .with_p99_ms(1.0)
            .with_max_error_rate(0.0);
        let h = hist_with_p95_ms(1000);
        match slo.evaluate(&h, 0.5) {
            SloOutcome::Violated(v) => assert_eq!(v.len(), 3, "{v:?}"),
            SloOutcome::Met => panic!("expected violations"),
        }
    }

    #[test]
    fn display_summarizes_constraints() {
        let slo = SloSpec::p95_under_ms(500.0).with_max_error_rate(0.01);
        let s = slo.to_string();
        assert!(s.contains("p95<=500ms"));
        assert!(s.contains("errors<=0.01"));
        assert_eq!(SloSpec::unconstrained().to_string(), "unconstrained");
    }
}
