//! The framework-wide error type.

use std::fmt;

/// Errors produced by the DCPerf-RS framework and its benchmarks.
#[derive(Debug)]
pub enum Error {
    /// An I/O operation failed (reading `/proc`, writing reports, …).
    Io(std::io::Error),
    /// A benchmark or suite was misconfigured.
    Config(String),
    /// A benchmark failed while running.
    Benchmark {
        /// Name of the failing benchmark.
        name: String,
        /// Human-readable failure description.
        message: String,
    },
    /// A benchmark could not meet its service-level objective at any load.
    SloUnattainable {
        /// Name of the failing benchmark.
        name: String,
        /// Description of the SLO that could not be met.
        slo: String,
    },
    /// Serializing or deserializing a report failed.
    Serialization(String),
    /// A benchmark with the requested name is not registered.
    UnknownBenchmark(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
            Error::Benchmark { name, message } => {
                write!(f, "benchmark '{name}' failed: {message}")
            }
            Error::SloUnattainable { name, slo } => {
                write!(f, "benchmark '{name}' cannot meet SLO: {slo}")
            }
            Error::Serialization(msg) => write!(f, "serialization error: {msg}"),
            Error::UnknownBenchmark(name) => write!(f, "unknown benchmark '{name}'"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<serde_json::Error> for Error {
    fn from(e: serde_json::Error) -> Self {
        Error::Serialization(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::Benchmark {
            name: "taobench".into(),
            message: "server refused to start".into(),
        };
        let s = e.to_string();
        assert!(s.contains("taobench"));
        assert!(s.contains("server refused"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error as _;
        let e = Error::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
