//! The [`Benchmark`] trait and per-run configuration.

use crate::error::Error;
use crate::hooks::HookManager;
use crate::report::BenchmarkReport;
use crate::sysinfo::SystemInfo;
use serde::{Deserialize, Serialize};

/// The workload categories DCPerf models (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadCategory {
    /// Frontend web serving (MediaWiki, DjangoBench).
    Web,
    /// Newsfeed ranking (FeedSim).
    Ranking,
    /// In-memory data caching (TaoBench).
    DataCaching,
    /// Big-data / warehouse queries (SparkBench).
    BigData,
    /// Media processing (VideoTranscodeBench).
    MediaProcessing,
    /// Datacenter-tax microbenchmarks.
    Microbenchmark,
    /// Comparison baselines from other suites (CloudSuite minis, …).
    Baseline,
}

impl std::fmt::Display for WorkloadCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WorkloadCategory::Web => "web",
            WorkloadCategory::Ranking => "ranking",
            WorkloadCategory::DataCaching => "data-caching",
            WorkloadCategory::BigData => "big-data",
            WorkloadCategory::MediaProcessing => "media-processing",
            WorkloadCategory::Microbenchmark => "microbenchmark",
            WorkloadCategory::Baseline => "baseline",
        };
        f.write_str(s)
    }
}

/// How large a run should be.
///
/// The real DCPerf runs for minutes to hours per benchmark; DCPerf-RS
/// scales the same workloads down so a full suite pass fits in CI, while
/// keeping the larger scales available for real measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds-per-benchmark scale for tests and CI.
    SmokeTest,
    /// The default scale: tens of seconds per benchmark.
    Standard,
    /// Minutes per benchmark; closest to the paper's methodology.
    Production,
}

impl Scale {
    /// A multiplicative factor applied to iteration counts and dataset
    /// sizes; `SmokeTest` is the unit scale.
    pub fn factor(self) -> u64 {
        match self {
            Scale::SmokeTest => 1,
            Scale::Standard => 8,
            Scale::Production => 64,
        }
    }
}

/// Configuration shared by every benchmark in a suite run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Run scale (dataset sizes, durations).
    pub scale: Scale,
    /// Master seed; every benchmark derives its own stream from it.
    pub seed: u64,
    /// Worker-thread override; `None` means one per logical CPU.
    pub threads: Option<usize>,
    /// Hook sampling interval in milliseconds.
    pub sample_interval_ms: u64,
    /// Directory for JSON reports; `None` disables writing.
    pub output_dir: Option<std::path::PathBuf>,
}

impl RunConfig {
    /// The default configuration at [`Scale::Standard`].
    pub fn new() -> Self {
        Self {
            scale: Scale::Standard,
            seed: 0xDC_BE_EF,
            threads: None,
            sample_interval_ms: 100,
            output_dir: None,
        }
    }

    /// A fast configuration for tests and CI.
    pub fn smoke_test() -> Self {
        Self {
            scale: Scale::SmokeTest,
            ..Self::new()
        }
    }

    /// A configuration closest to the paper's methodology.
    pub fn production() -> Self {
        Self {
            scale: Scale::Production,
            ..Self::new()
        }
    }

    /// Sets the master seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread override (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Resolves the worker-thread count against the host.
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Mutable state handed to a benchmark while it runs: configuration, the
/// hook manager, and host information.
#[derive(Debug)]
pub struct RunContext {
    config: RunConfig,
    hooks: HookManager,
    system: SystemInfo,
    benchmark_seed: u64,
    benchmark_name: String,
    telemetry: dcperf_telemetry::Telemetry,
}

impl RunContext {
    /// Creates a context for one benchmark run.
    pub fn new(config: RunConfig, benchmark_name: &str) -> Self {
        // Derive a per-benchmark seed so adding/removing benchmarks does
        // not perturb the streams of the others.
        let benchmark_seed =
            dcperf_util::SplitMix64::mix(config.seed ^ fnv1a(benchmark_name.as_bytes()));
        Self {
            config,
            hooks: HookManager::new(),
            system: SystemInfo::probe(),
            benchmark_seed,
            benchmark_name: benchmark_name.to_owned(),
            telemetry: dcperf_telemetry::Telemetry::new(),
        }
    }

    /// The run configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// The hook manager (register and control hooks through this).
    pub fn hooks(&self) -> &HookManager {
        &self.hooks
    }

    /// Mutable access to the hook manager.
    pub fn hooks_mut(&mut self) -> &mut HookManager {
        &mut self.hooks
    }

    /// Host information probed at context creation.
    pub fn system(&self) -> &SystemInfo {
        &self.system
    }

    /// The benchmark's derived deterministic seed.
    pub fn seed(&self) -> u64 {
        self.benchmark_seed
    }

    /// The run's telemetry registry. Benchmarks record counters and
    /// latency histograms here; the framework adds lifecycle phase spans
    /// and embeds the final snapshot in the report.
    pub fn telemetry(&self) -> &dcperf_telemetry::Telemetry {
        &self.telemetry
    }

    /// Starts a phase span keyed by this run's benchmark name; the span
    /// records its wall time into the run telemetry when dropped.
    #[must_use = "the span records on drop; binding it to _ ends it immediately"]
    pub fn phase_span(&self, phase: dcperf_telemetry::Phase) -> dcperf_telemetry::PhaseSpan {
        self.telemetry.phase_span(&self.benchmark_name, phase)
    }
}

/// FNV-1a, used only for stable name→seed derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A benchmark runnable by the DCPerf-RS framework.
///
/// Implementations model one production workload category. The framework
/// guarantees `install` is called before the first `run`, mirrors DCPerf's
/// `install`/`run` commands, and wraps each `run` with hook start/stop.
pub trait Benchmark: Send + Sync {
    /// Stable, unique benchmark name (used for scoring and report files).
    fn name(&self) -> &str;

    /// Which production workload category this benchmark models.
    fn category(&self) -> WorkloadCategory;

    /// One-line human description.
    fn description(&self) -> &str;

    /// Prepares datasets and other one-time state.
    ///
    /// The default implementation does nothing, for benchmarks that build
    /// their state inside `run`.
    ///
    /// # Errors
    ///
    /// Returns an error if preparation fails (e.g. dataset generation
    /// cannot allocate its working directory).
    fn install(&self, _ctx: &mut RunContext) -> Result<(), Error> {
        Ok(())
    }

    /// Runs the benchmark and produces a report.
    ///
    /// # Errors
    ///
    /// Returns an error if the workload fails or cannot meet its SLO.
    fn run(&self, ctx: &mut RunContext) -> Result<BenchmarkReport, Error>;

    /// The metric used for scoring (must appear in the report's metrics).
    ///
    /// Defaults to `requests_per_second`, the most common DCPerf metric.
    fn score_metric(&self) -> &str {
        "requests_per_second"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors_are_monotone() {
        assert!(Scale::SmokeTest.factor() < Scale::Standard.factor());
        assert!(Scale::Standard.factor() < Scale::Production.factor());
    }

    #[test]
    fn per_benchmark_seeds_differ() {
        let cfg = RunConfig::smoke_test();
        let a = RunContext::new(cfg.clone(), "taobench");
        let b = RunContext::new(cfg, "feedsim");
        assert_ne!(a.seed(), b.seed());
    }

    #[test]
    fn same_benchmark_same_seed() {
        let cfg = RunConfig::smoke_test().with_seed(7);
        let a = RunContext::new(cfg.clone(), "taobench");
        let b = RunContext::new(cfg, "taobench");
        assert_eq!(a.seed(), b.seed());
    }

    #[test]
    fn master_seed_perturbs_benchmark_seed() {
        let a = RunContext::new(RunConfig::smoke_test().with_seed(1), "x");
        let b = RunContext::new(RunConfig::smoke_test().with_seed(2), "x");
        assert_ne!(a.seed(), b.seed());
    }

    #[test]
    fn effective_threads_defaults_to_parallelism() {
        let cfg = RunConfig::smoke_test();
        assert!(cfg.effective_threads() >= 1);
        assert_eq!(cfg.with_threads(3).effective_threads(), 3);
    }

    #[test]
    fn category_display_is_kebab() {
        assert_eq!(WorkloadCategory::DataCaching.to_string(), "data-caching");
        assert_eq!(WorkloadCategory::Web.to_string(), "web");
    }
}
