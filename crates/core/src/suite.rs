//! The benchmark suite: registration, install/run driving, and summary
//! reporting.

use crate::benchmark::{Benchmark, RunConfig, RunContext};
use crate::error::Error;
use crate::report::BenchmarkReport;
use crate::score::{BaselineTable, ScoreCard};

/// A collection of registered benchmarks driven through the same
/// install → run → score pipeline, mirroring DCPerf's `benchpress` CLI.
#[derive(Default)]
pub struct Suite {
    benchmarks: Vec<Box<dyn Benchmark>>,
    baselines: BaselineTable,
}

impl std::fmt::Debug for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Suite")
            .field(
                "benchmarks",
                &self.benchmarks.iter().map(|b| b.name()).collect::<Vec<_>>(),
            )
            .field("baselines", &self.baselines.len())
            .finish()
    }
}

impl Suite {
    /// Creates an empty suite.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a benchmark.
    ///
    /// # Panics
    ///
    /// Panics if a benchmark with the same name is already registered —
    /// duplicate names would make scores ambiguous.
    pub fn register(&mut self, benchmark: Box<dyn Benchmark>) {
        assert!(
            self.benchmarks.iter().all(|b| b.name() != benchmark.name()),
            "benchmark '{}' registered twice",
            benchmark.name()
        );
        self.benchmarks.push(benchmark);
    }

    /// Sets the baseline value used to normalize `benchmark`'s score.
    pub fn set_baseline(&mut self, benchmark: &str, metric: &str, value: f64) {
        self.baselines.set(benchmark, metric, value);
    }

    /// Names of registered benchmarks, in registration order.
    pub fn benchmark_names(&self) -> Vec<&str> {
        self.benchmarks.iter().map(|b| b.name()).collect()
    }

    /// Number of registered benchmarks.
    pub fn len(&self) -> usize {
        self.benchmarks.len()
    }

    /// Whether no benchmarks are registered.
    pub fn is_empty(&self) -> bool {
        self.benchmarks.is_empty()
    }

    /// Runs a single benchmark by name: install, then run, then score.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownBenchmark`] for unregistered names, or the
    /// benchmark's own failure.
    pub fn run(&self, name: &str, config: &RunConfig) -> Result<BenchmarkReport, Error> {
        let bench = self
            .benchmarks
            .iter()
            .find(|b| b.name() == name)
            .ok_or_else(|| Error::UnknownBenchmark(name.to_owned()))?;
        self.run_one(bench.as_ref(), config)
    }

    fn run_one(&self, bench: &dyn Benchmark, config: &RunConfig) -> Result<BenchmarkReport, Error> {
        use dcperf_telemetry::Phase;

        let mut ctx = RunContext::new(config.clone(), bench.name());
        {
            let _setup = ctx.phase_span(Phase::Setup);
            bench.install(&mut ctx)?;
            ctx.hooks_mut().register_defaults();
            let interval = std::time::Duration::from_millis(config.sample_interval_ms.max(1));
            ctx.hooks_mut().start(interval);
        }
        let result = {
            let _measure = ctx.phase_span(Phase::Measure);
            bench.run(&mut ctx)
        };
        {
            // Ensure the sampler stops even on failure.
            let _teardown = ctx.phase_span(Phase::Teardown);
            ctx.hooks_mut().stop();
        }
        let mut report = result?;
        // The benchmark snapshotted telemetry while the measure span was
        // still open; refresh so the report sees every lifecycle phase.
        report.telemetry = ctx.telemetry().snapshot();
        if let Some(dir) = &config.output_dir {
            std::fs::create_dir_all(dir)?;
            let path = dir.join(format!("{}.json", bench.name()));
            std::fs::write(path, report.to_json()?)?;
        }
        Ok(report)
    }

    /// Runs every registered benchmark and produces a summary with
    /// normalized scores and the geometric-mean overall score.
    ///
    /// # Errors
    ///
    /// Fails fast on the first benchmark error.
    pub fn run_all(&self, config: &RunConfig) -> Result<SuiteSummary, Error> {
        let mut reports = Vec::with_capacity(self.benchmarks.len());
        let mut scores = ScoreCard::new();
        for bench in &self.benchmarks {
            let report = self.run_one(bench.as_ref(), config)?;
            if let Some((metric, _)) = self.baselines.get(bench.name()) {
                let metric = metric.to_owned();
                match report.metric_f64(&metric) {
                    Some(measured) => {
                        if let Some(score) = self.baselines.score(bench.name(), measured) {
                            scores.insert(bench.name(), score);
                        }
                    }
                    None => {
                        return Err(Error::Benchmark {
                            name: bench.name().to_owned(),
                            message: format!("report is missing scoring metric '{metric}'"),
                        })
                    }
                }
            }
            reports.push(report);
        }
        Ok(SuiteSummary { reports, scores })
    }
}

/// The outcome of a full-suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteSummary {
    reports: Vec<BenchmarkReport>,
    scores: ScoreCard,
}

impl SuiteSummary {
    /// Per-benchmark reports, in run order.
    pub fn reports(&self) -> &[BenchmarkReport] {
        &self.reports
    }

    /// Per-benchmark normalized scores.
    pub fn scores(&self) -> &ScoreCard {
        &self.scores
    }

    /// The overall DCPerf score: geometric mean of the benchmark scores.
    pub fn overall_score(&self) -> f64 {
        self.scores.overall()
    }

    /// Renders a compact human-readable summary table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<24} {:>12}\n", "benchmark", "score"));
        for (name, score) in self.scores.iter() {
            out.push_str(&format!("{name:<24} {score:>12.4}\n"));
        }
        out.push_str(&format!(
            "{:<24} {:>12.4}\n",
            "OVERALL (geomean)",
            self.overall_score()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::WorkloadCategory;
    use crate::report::ReportBuilder;

    struct Fixed {
        name: &'static str,
        rps: f64,
    }

    impl Benchmark for Fixed {
        fn name(&self) -> &str {
            self.name
        }
        fn category(&self) -> WorkloadCategory {
            WorkloadCategory::Microbenchmark
        }
        fn description(&self) -> &str {
            "fixed-output benchmark for tests"
        }
        fn run(&self, ctx: &mut RunContext) -> Result<BenchmarkReport, Error> {
            let mut b = ReportBuilder::new(self.name);
            b.metric("requests_per_second", self.rps);
            Ok(b.finish(ctx))
        }
    }

    struct Failing;

    impl Benchmark for Failing {
        fn name(&self) -> &str {
            "failing"
        }
        fn category(&self) -> WorkloadCategory {
            WorkloadCategory::Microbenchmark
        }
        fn description(&self) -> &str {
            "always fails"
        }
        fn run(&self, _ctx: &mut RunContext) -> Result<BenchmarkReport, Error> {
            Err(Error::Benchmark {
                name: "failing".into(),
                message: "intentional".into(),
            })
        }
    }

    fn two_benchmark_suite() -> Suite {
        let mut s = Suite::new();
        s.register(Box::new(Fixed {
            name: "fast",
            rps: 400.0,
        }));
        s.register(Box::new(Fixed {
            name: "slow",
            rps: 100.0,
        }));
        s.set_baseline("fast", "requests_per_second", 100.0);
        s.set_baseline("slow", "requests_per_second", 100.0);
        s
    }

    #[test]
    fn run_all_scores_and_geomeans() {
        let s = two_benchmark_suite();
        let summary = s.run_all(&RunConfig::smoke_test()).unwrap();
        assert_eq!(summary.reports().len(), 2);
        assert_eq!(summary.scores().get("fast"), Some(4.0));
        assert_eq!(summary.scores().get("slow"), Some(1.0));
        assert!((summary.overall_score() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn run_by_name() {
        let s = two_benchmark_suite();
        let report = s.run("fast", &RunConfig::smoke_test()).unwrap();
        assert_eq!(report.metric_f64("requests_per_second"), Some(400.0));
    }

    #[test]
    fn unknown_name_is_an_error() {
        let s = two_benchmark_suite();
        match s.run("nope", &RunConfig::smoke_test()) {
            Err(Error::UnknownBenchmark(n)) => assert_eq!(n, "nope"),
            other => panic!("expected UnknownBenchmark, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_rejected() {
        let mut s = Suite::new();
        s.register(Box::new(Fixed {
            name: "x",
            rps: 1.0,
        }));
        s.register(Box::new(Fixed {
            name: "x",
            rps: 2.0,
        }));
    }

    #[test]
    fn failing_benchmark_propagates() {
        let mut s = Suite::new();
        s.register(Box::new(Failing));
        assert!(s.run_all(&RunConfig::smoke_test()).is_err());
    }

    #[test]
    fn missing_score_metric_is_an_error() {
        struct NoMetric;
        impl Benchmark for NoMetric {
            fn name(&self) -> &str {
                "no-metric"
            }
            fn category(&self) -> WorkloadCategory {
                WorkloadCategory::Microbenchmark
            }
            fn description(&self) -> &str {
                "emits nothing"
            }
            fn run(&self, ctx: &mut RunContext) -> Result<BenchmarkReport, Error> {
                Ok(ReportBuilder::new("no-metric").finish(ctx))
            }
        }
        let mut s = Suite::new();
        s.register(Box::new(NoMetric));
        s.set_baseline("no-metric", "requests_per_second", 10.0);
        let err = s.run_all(&RunConfig::smoke_test()).unwrap_err();
        assert!(err.to_string().contains("missing scoring metric"));
    }

    #[test]
    fn reports_written_to_output_dir() {
        let dir = std::env::temp_dir().join(format!("dcperf-suite-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = two_benchmark_suite();
        let config = RunConfig {
            output_dir: Some(dir.clone()),
            ..RunConfig::smoke_test()
        };
        s.run_all(&config).unwrap();
        assert!(dir.join("fast.json").exists());
        assert!(dir.join("slow.json").exists());
        let parsed =
            BenchmarkReport::from_json(&std::fs::read_to_string(dir.join("fast.json")).unwrap())
                .unwrap();
        assert_eq!(parsed.benchmark, "fast");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unbaselined_benchmark_runs_but_not_scored() {
        let mut s = Suite::new();
        s.register(Box::new(Fixed {
            name: "unscored",
            rps: 5.0,
        }));
        let summary = s.run_all(&RunConfig::smoke_test()).unwrap();
        assert_eq!(summary.reports().len(), 1);
        assert!(summary.scores().is_empty());
    }

    #[test]
    fn reports_embed_lifecycle_phase_timings() {
        use dcperf_telemetry::Phase;
        let s = two_benchmark_suite();
        let report = s.run("fast", &RunConfig::smoke_test()).unwrap();
        for phase in [Phase::Setup, Phase::Measure, Phase::Teardown] {
            let summary = report
                .telemetry
                .phase("fast", phase)
                .unwrap_or_else(|| panic!("missing {phase} phase"));
            assert_eq!(summary.calls, 1, "{phase} should run exactly once");
        }
    }

    #[test]
    fn render_table_mentions_overall() {
        let s = two_benchmark_suite();
        let summary = s.run_all(&RunConfig::smoke_test()).unwrap();
        let table = summary.render_table();
        assert!(table.contains("OVERALL"));
        assert!(table.contains("fast"));
    }
}
