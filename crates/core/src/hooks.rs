//! The extensible hooks framework.
//!
//! DCPerf "is designed as an extensible framework through plugins called
//! hooks. New hooks for monitoring additional performance metrics can be
//! easily added" (§3.1). A [`Hook`] produces named time series sampled on a
//! fixed interval while a benchmark runs; the [`HookManager`] owns the
//! sampler thread and assembles [`HookReport`]s when the run ends.
//!
//! Built-in hooks mirror the paper's list: CPU utilization with user/system
//! breakdown ([`CpuUtilHook`]), memory ([`MemStatHook`]), network
//! ([`NetStatHook`]), core frequency ([`CpuFreqHook`]), power
//! ([`PowerHook`]), top-down microarchitecture metrics ([`TopdownHook`]),
//! and the execution-support [`CopyMoveHook`].
//!
//! Hardware counters and board sensors are not portably readable from an
//! unprivileged process, so [`PowerHook`] and [`TopdownHook`] accept a
//! *provider* closure — in DCPerf-RS the workloads wire the calibrated
//! platform model in as the provider, and on hosts that expose RAPL the
//! power hook reads `/sys/class/powercap` directly.

use dcperf_util::RunningStats;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One named, sampled series with summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TimeSeries {
    /// Unit label, e.g. `"percent"`, `"GHz"`, `"watts"`.
    pub unit: String,
    /// Milliseconds since hook start for each sample.
    pub timestamps_ms: Vec<u64>,
    /// The sampled values.
    pub values: Vec<f64>,
    /// Mean of `values` (0.0 when empty).
    pub mean: f64,
    /// Minimum of `values` (0.0 when empty).
    pub min: f64,
    /// Maximum of `values` (0.0 when empty).
    pub max: f64,
}

impl TimeSeries {
    fn finalize(&mut self) {
        let mut stats = RunningStats::new();
        for &v in &self.values {
            stats.push(v);
        }
        self.mean = stats.mean();
        self.min = stats.min();
        self.max = stats.max();
    }
}

/// The output of one hook for one benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HookReport {
    /// Hook name.
    pub hook: String,
    /// Series keyed by name (e.g. `"cpu_util_total"`).
    pub series: std::collections::BTreeMap<String, TimeSeries>,
    /// Free-form notes (e.g. files moved by [`CopyMoveHook`]).
    pub notes: Vec<String>,
}

/// A sampled measurement: `(series name, unit, value)`.
pub type Sample = (String, &'static str, f64);

/// A monitoring plugin.
///
/// Implementations are polled on the configured interval from a dedicated
/// sampler thread; each returned [`Sample`] is appended to the series of
/// the same name.
pub trait Hook: Send {
    /// Stable hook name.
    fn name(&self) -> &str;

    /// Called once when sampling starts.
    fn on_start(&mut self) {}

    /// Takes one round of samples. May return an empty vector if the
    /// underlying source is unavailable.
    fn sample(&mut self) -> Vec<Sample>;

    /// Called once when sampling stops; may return notes for the report.
    fn on_stop(&mut self) -> Vec<String> {
        Vec::new()
    }
}

/// Owns registered hooks and the background sampler thread.
#[derive(Default)]
pub struct HookManager {
    pending: Vec<Box<dyn Hook>>,
    runner: Option<SamplerHandle>,
    finished: Vec<HookReport>,
}

impl std::fmt::Debug for HookManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HookManager")
            .field("pending_hooks", &self.pending.len())
            .field("running", &self.runner.is_some())
            .field("finished_reports", &self.finished.len())
            .finish()
    }
}

impl std::fmt::Debug for SamplerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SamplerHandle").finish_non_exhaustive()
    }
}

struct SamplerHandle {
    stop: Arc<AtomicBool>,
    join: std::thread::JoinHandle<Vec<HookReport>>,
}

impl HookManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a hook. Must be called before [`HookManager::start`].
    pub fn register(&mut self, hook: Box<dyn Hook>) {
        self.pending.push(hook);
    }

    /// Registers the default monitoring set (CPU, memory, network,
    /// frequency).
    pub fn register_defaults(&mut self) {
        self.register(Box::new(CpuUtilHook::new()));
        self.register(Box::new(MemStatHook::new()));
        self.register(Box::new(NetStatHook::new()));
        self.register(Box::new(CpuFreqHook::new()));
    }

    /// Starts the sampler thread with the given interval. No-op if no hooks
    /// are registered or sampling is already running.
    pub fn start(&mut self, interval: Duration) {
        if self.pending.is_empty() || self.runner.is_some() {
            return;
        }
        let mut hooks = std::mem::take(&mut self.pending);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("dcperf-hooks".into())
            .spawn(move || {
                let started = Instant::now();
                for h in &mut hooks {
                    h.on_start();
                }
                let mut series_by_hook: Vec<std::collections::BTreeMap<String, TimeSeries>> =
                    (0..hooks.len()).map(|_| Default::default()).collect();
                loop {
                    let t_ms = started.elapsed().as_millis() as u64;
                    for (h, store) in hooks.iter_mut().zip(series_by_hook.iter_mut()) {
                        for (name, unit, value) in h.sample() {
                            let ts = store.entry(name).or_insert_with(|| TimeSeries {
                                unit: unit.to_owned(),
                                ..Default::default()
                            });
                            ts.timestamps_ms.push(t_ms);
                            ts.values.push(value);
                        }
                    }
                    // ordering: advisory stop flag; a late observation only samples once more
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(interval);
                }
                hooks
                    .iter_mut()
                    .zip(series_by_hook)
                    .map(|(h, mut series)| {
                        for ts in series.values_mut() {
                            ts.finalize();
                        }
                        HookReport {
                            hook: h.name().to_owned(),
                            series,
                            notes: h.on_stop(),
                        }
                    })
                    .collect()
            })
            .expect("failed to spawn hook sampler thread");
        self.runner = Some(SamplerHandle { stop, join });
    }

    /// Stops the sampler thread, if running, and stores its reports.
    pub fn stop(&mut self) {
        if let Some(handle) = self.runner.take() {
            // ordering: advisory stop flag; join() below is the real synchronization
            handle.stop.store(true, Ordering::Relaxed);
            if let Ok(mut reports) = handle.join.join() {
                self.finished.append(&mut reports);
            }
        }
    }

    /// Stops sampling and returns every accumulated [`HookReport`].
    pub fn drain_reports(&mut self) -> Vec<HookReport> {
        self.stop();
        std::mem::take(&mut self.finished)
    }
}

impl Drop for HookManager {
    fn drop(&mut self) {
        // Never leave the sampler thread running; ignore its output.
        self.stop();
    }
}

// ---------------------------------------------------------------------------
// Built-in hooks
// ---------------------------------------------------------------------------

/// CPU utilization from `/proc/stat`: total busy % and system (kernel+IRQ) %.
///
/// Mirrors DCPerf's "total CPU utilization and breakdowns, such as the
/// percentage of cycles spent in user space, kernel and IRQs".
#[derive(Debug, Default)]
pub struct CpuUtilHook {
    last: Option<CpuTimes>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CpuTimes {
    user: u64,
    nice: u64,
    system: u64,
    idle: u64,
    iowait: u64,
    irq: u64,
    softirq: u64,
}

impl CpuTimes {
    fn read() -> Option<Self> {
        let stat = std::fs::read_to_string("/proc/stat").ok()?;
        let line = stat.lines().next()?;
        let mut it = line.split_whitespace();
        if it.next()? != "cpu" {
            return None;
        }
        let mut f = || it.next().and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
        Some(Self {
            user: f(),
            nice: f(),
            system: f(),
            idle: f(),
            iowait: f(),
            irq: f(),
            softirq: f(),
        })
    }

    fn busy(&self) -> u64 {
        self.user + self.nice + self.system + self.irq + self.softirq
    }

    fn sys(&self) -> u64 {
        self.system + self.irq + self.softirq
    }

    fn total(&self) -> u64 {
        self.busy() + self.idle + self.iowait
    }
}

impl CpuUtilHook {
    /// Creates the hook.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Hook for CpuUtilHook {
    fn name(&self) -> &str {
        "cpu_util"
    }

    fn on_start(&mut self) {
        self.last = CpuTimes::read();
    }

    fn sample(&mut self) -> Vec<Sample> {
        let Some(now) = CpuTimes::read() else {
            return Vec::new();
        };
        let Some(prev) = self.last.replace(now) else {
            return Vec::new();
        };
        let dt = now.total().saturating_sub(prev.total());
        if dt == 0 {
            return Vec::new();
        }
        let busy = now.busy().saturating_sub(prev.busy()) as f64 / dt as f64 * 100.0;
        let sys = now.sys().saturating_sub(prev.sys()) as f64 / dt as f64 * 100.0;
        vec![
            ("cpu_util_total".into(), "percent", busy),
            ("cpu_util_sys".into(), "percent", sys),
        ]
    }
}

/// Memory usage from `/proc/meminfo` (used MB, swap-used MB).
#[derive(Debug, Default)]
pub struct MemStatHook;

impl MemStatHook {
    /// Creates the hook.
    pub fn new() -> Self {
        Self
    }
}

fn meminfo_kb(field: &str, text: &str) -> Option<u64> {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            return rest
                .trim_start_matches(':')
                .trim()
                .trim_end_matches(" kB")
                .trim()
                .parse()
                .ok();
        }
    }
    None
}

impl Hook for MemStatHook {
    fn name(&self) -> &str {
        "mem_stat"
    }

    fn sample(&mut self) -> Vec<Sample> {
        let Ok(text) = std::fs::read_to_string("/proc/meminfo") else {
            return Vec::new();
        };
        let mut out = Vec::new();
        if let (Some(total), Some(avail)) = (
            meminfo_kb("MemTotal", &text),
            meminfo_kb("MemAvailable", &text),
        ) {
            out.push((
                "mem_used_mb".into(),
                "MB",
                (total.saturating_sub(avail)) as f64 / 1024.0,
            ));
        }
        if let (Some(total), Some(free)) = (
            meminfo_kb("SwapTotal", &text),
            meminfo_kb("SwapFree", &text),
        ) {
            out.push((
                "swap_used_mb".into(),
                "MB",
                (total.saturating_sub(free)) as f64 / 1024.0,
            ));
        }
        out
    }
}

/// Network traffic from `/proc/net/dev`, reported as deltas in bytes/s and
/// packets/s aggregated across interfaces.
#[derive(Debug, Default)]
pub struct NetStatHook {
    last: Option<(Instant, NetTotals)>,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct NetTotals {
    rx_bytes: u64,
    tx_bytes: u64,
    rx_packets: u64,
    tx_packets: u64,
}

impl NetTotals {
    fn read() -> Option<Self> {
        let text = std::fs::read_to_string("/proc/net/dev").ok()?;
        let mut totals = NetTotals::default();
        for line in text.lines().skip(2) {
            let Some((_iface, rest)) = line.split_once(':') else {
                continue;
            };
            let fields: Vec<u64> = rest
                .split_whitespace()
                .map(|f| f.parse().unwrap_or(0))
                .collect();
            if fields.len() >= 16 {
                totals.rx_bytes += fields[0];
                totals.rx_packets += fields[1];
                totals.tx_bytes += fields[8];
                totals.tx_packets += fields[9];
            }
        }
        Some(totals)
    }
}

impl NetStatHook {
    /// Creates the hook.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Hook for NetStatHook {
    fn name(&self) -> &str {
        "net_stat"
    }

    fn on_start(&mut self) {
        self.last = NetTotals::read().map(|t| (Instant::now(), t));
    }

    fn sample(&mut self) -> Vec<Sample> {
        let Some(now) = NetTotals::read() else {
            return Vec::new();
        };
        let t_now = Instant::now();
        let Some((t_prev, prev)) = self.last.replace((t_now, now)) else {
            return Vec::new();
        };
        let dt = t_now.duration_since(t_prev).as_secs_f64();
        if dt <= 0.0 {
            return Vec::new();
        }
        vec![
            (
                "net_rx_bytes_per_sec".into(),
                "B/s",
                now.rx_bytes.saturating_sub(prev.rx_bytes) as f64 / dt,
            ),
            (
                "net_tx_bytes_per_sec".into(),
                "B/s",
                now.tx_bytes.saturating_sub(prev.tx_bytes) as f64 / dt,
            ),
            (
                "net_rx_packets_per_sec".into(),
                "pkt/s",
                now.rx_packets.saturating_sub(prev.rx_packets) as f64 / dt,
            ),
            (
                "net_tx_packets_per_sec".into(),
                "pkt/s",
                now.tx_packets.saturating_sub(prev.tx_packets) as f64 / dt,
            ),
        ]
    }
}

/// CPU core frequency as reported in sysfs
/// (`/sys/devices/system/cpu/cpu*/cpufreq/scaling_cur_freq`), averaged
/// across cores and reported in GHz.
#[derive(Debug, Default)]
pub struct CpuFreqHook {
    paths: Vec<std::path::PathBuf>,
}

impl CpuFreqHook {
    /// Creates the hook.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Hook for CpuFreqHook {
    fn name(&self) -> &str {
        "cpu_freq"
    }

    fn on_start(&mut self) {
        let Ok(entries) = std::fs::read_dir("/sys/devices/system/cpu") else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path().join("cpufreq/scaling_cur_freq");
            if path.exists() {
                self.paths.push(path);
            }
        }
    }

    fn sample(&mut self) -> Vec<Sample> {
        if self.paths.is_empty() {
            return Vec::new();
        }
        let mut sum_khz = 0u64;
        let mut n = 0u64;
        for path in &self.paths {
            if let Ok(text) = std::fs::read_to_string(path) {
                if let Ok(khz) = text.trim().parse::<u64>() {
                    sum_khz += khz;
                    n += 1;
                }
            }
        }
        if n == 0 {
            return Vec::new();
        }
        vec![(
            "core_freq_ghz".into(),
            "GHz",
            sum_khz as f64 / n as f64 / 1e6,
        )]
    }
}

/// A provider of out-of-band samples, used by [`PowerHook`] and
/// [`TopdownHook`] where hardware counters are not portably accessible.
pub type SampleProvider = Box<dyn FnMut() -> Vec<(String, f64)> + Send>;

/// Power consumption. Reads Intel RAPL (`/sys/class/powercap`) when
/// available; otherwise falls back to an injected model provider (DCPerf-RS
/// wires the platform power model here).
pub struct PowerHook {
    rapl: Vec<(std::path::PathBuf, Option<u64>)>,
    last_t: Option<Instant>,
    provider: Option<SampleProvider>,
}

impl std::fmt::Debug for PowerHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PowerHook")
            .field("rapl_domains", &self.rapl.len())
            .field("has_provider", &self.provider.is_some())
            .finish()
    }
}

impl PowerHook {
    /// Creates a hook reading RAPL only.
    pub fn new() -> Self {
        Self {
            rapl: Vec::new(),
            last_t: None,
            provider: None,
        }
    }

    /// Creates a hook with a fallback model provider.
    pub fn with_provider(provider: SampleProvider) -> Self {
        Self {
            provider: Some(provider),
            ..Self::new()
        }
    }
}

impl Default for PowerHook {
    fn default() -> Self {
        Self::new()
    }
}

impl Hook for PowerHook {
    fn name(&self) -> &str {
        "power"
    }

    fn on_start(&mut self) {
        if let Ok(entries) = std::fs::read_dir("/sys/class/powercap") {
            for entry in entries.flatten() {
                let path = entry.path().join("energy_uj");
                if path.exists() {
                    self.rapl.push((path, None));
                }
            }
        }
        self.last_t = Some(Instant::now());
    }

    fn sample(&mut self) -> Vec<Sample> {
        let now = Instant::now();
        let dt = self
            .last_t
            .replace(now)
            .map(|t| now.duration_since(t).as_secs_f64())
            .unwrap_or(0.0);
        let mut out = Vec::new();
        if dt > 0.0 {
            let mut total_uj = 0u64;
            let mut have = false;
            for (path, last) in &mut self.rapl {
                if let Ok(text) = std::fs::read_to_string(&*path) {
                    if let Ok(uj) = text.trim().parse::<u64>() {
                        if let Some(prev) = last.replace(uj) {
                            total_uj += uj.saturating_sub(prev);
                            have = true;
                        }
                    }
                }
            }
            if have {
                out.push(("power_rapl_watts".into(), "W", total_uj as f64 / 1e6 / dt));
            }
        }
        if let Some(provider) = &mut self.provider {
            for (name, value) in provider() {
                out.push((name, "W", value));
            }
        }
        out
    }
}

/// Top-down microarchitecture metrics.
///
/// Real DCPerf programs PMU counters; from an unprivileged process that is
/// not portable, so this hook samples an injected provider (the platform
/// model, or a perf-wrapper if the deployment has one).
pub struct TopdownHook {
    provider: SampleProvider,
}

impl std::fmt::Debug for TopdownHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopdownHook").finish_non_exhaustive()
    }
}

impl TopdownHook {
    /// Creates the hook around a sample provider.
    pub fn new(provider: SampleProvider) -> Self {
        Self { provider }
    }
}

impl Hook for TopdownHook {
    fn name(&self) -> &str {
        "topdown"
    }

    fn sample(&mut self) -> Vec<Sample> {
        (self.provider)()
            .into_iter()
            .map(|(name, v)| (name, "percent", v))
            .collect()
    }
}

/// Copies or moves files (e.g. logs with time-series data) into a
/// per-run folder when the benchmark finishes, "ensuring long-term data
/// preservation and enabling post-analysis" (§3.1).
#[derive(Debug)]
pub struct CopyMoveHook {
    sources: Vec<std::path::PathBuf>,
    dest_dir: std::path::PathBuf,
    remove_source: bool,
}

impl CopyMoveHook {
    /// Creates a hook that copies `sources` into `dest_dir` at run end.
    pub fn copy(sources: Vec<std::path::PathBuf>, dest_dir: std::path::PathBuf) -> Self {
        Self {
            sources,
            dest_dir,
            remove_source: false,
        }
    }

    /// Creates a hook that moves `sources` into `dest_dir` at run end.
    pub fn r#move(sources: Vec<std::path::PathBuf>, dest_dir: std::path::PathBuf) -> Self {
        Self {
            sources,
            dest_dir,
            remove_source: true,
        }
    }
}

impl Hook for CopyMoveHook {
    fn name(&self) -> &str {
        "copy_move"
    }

    fn sample(&mut self) -> Vec<Sample> {
        Vec::new()
    }

    fn on_stop(&mut self) -> Vec<String> {
        let mut notes = Vec::new();
        if std::fs::create_dir_all(&self.dest_dir).is_err() {
            notes.push(format!(
                "copy_move: could not create {}",
                self.dest_dir.display()
            ));
            return notes;
        }
        for src in &self.sources {
            let Some(file_name) = src.file_name() else {
                continue;
            };
            let dst = self.dest_dir.join(file_name);
            let outcome = std::fs::copy(src, &dst).and_then(|_| {
                if self.remove_source {
                    std::fs::remove_file(src)
                } else {
                    Ok(())
                }
            });
            match outcome {
                Ok(()) => notes.push(format!(
                    "{} {} -> {}",
                    if self.remove_source {
                        "moved"
                    } else {
                        "copied"
                    },
                    src.display(),
                    dst.display()
                )),
                Err(e) => notes.push(format!("failed {}: {e}", src.display())),
            }
        }
        notes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic in-memory hook for framework tests.
    #[derive(Debug, Default)]
    struct CountingHook {
        n: u64,
    }

    impl Hook for CountingHook {
        fn name(&self) -> &str {
            "counting"
        }

        fn sample(&mut self) -> Vec<Sample> {
            self.n += 1;
            vec![("count".into(), "n", self.n as f64)]
        }

        fn on_stop(&mut self) -> Vec<String> {
            vec![format!("sampled {} times", self.n)]
        }
    }

    #[test]
    fn manager_collects_series_and_notes() {
        let mut mgr = HookManager::new();
        mgr.register(Box::new(CountingHook::default()));
        mgr.start(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(40));
        let reports = mgr.drain_reports();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.hook, "counting");
        let series = r.series.get("count").expect("series recorded");
        assert!(
            series.values.len() >= 2,
            "got {} samples",
            series.values.len()
        );
        assert_eq!(series.values[0], 1.0);
        assert!(series.mean >= 1.0);
        assert_eq!(r.notes.len(), 1);
    }

    #[test]
    fn drain_twice_is_empty_second_time() {
        let mut mgr = HookManager::new();
        mgr.register(Box::new(CountingHook::default()));
        mgr.start(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(15));
        assert!(!mgr.drain_reports().is_empty());
        assert!(mgr.drain_reports().is_empty());
    }

    #[test]
    fn start_without_hooks_is_noop() {
        let mut mgr = HookManager::new();
        mgr.start(Duration::from_millis(5));
        assert!(mgr.drain_reports().is_empty());
    }

    #[test]
    fn stop_without_start_is_noop() {
        let mut mgr = HookManager::new();
        mgr.register(Box::new(CountingHook::default()));
        mgr.stop();
        assert!(mgr.drain_reports().is_empty());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn cpu_util_hook_samples_on_linux() {
        let mut hook = CpuUtilHook::new();
        hook.on_start();
        std::thread::sleep(Duration::from_millis(30));
        // Burn a little CPU so the delta is non-degenerate.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let samples = hook.sample();
        assert!(
            samples
                .iter()
                .any(|(n, _, v)| n == "cpu_util_total" && *v >= 0.0),
            "samples: {samples:?}"
        );
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mem_stat_hook_samples_on_linux() {
        let mut hook = MemStatHook::new();
        let samples = hook.sample();
        assert!(samples
            .iter()
            .any(|(n, _, v)| n == "mem_used_mb" && *v > 0.0));
    }

    #[test]
    fn copy_move_hook_copies_files() {
        let dir = std::env::temp_dir().join(format!("dcperf-hook-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("log.txt");
        std::fs::write(&src, "hello").unwrap();
        let dest = dir.join("archive");
        let mut hook = CopyMoveHook::copy(vec![src.clone()], dest.clone());
        let notes = hook.on_stop();
        assert!(notes[0].starts_with("copied"), "{notes:?}");
        assert_eq!(
            std::fs::read_to_string(dest.join("log.txt")).unwrap(),
            "hello"
        );
        assert!(src.exists(), "copy must preserve the source");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn copy_move_hook_moves_files() {
        let dir = std::env::temp_dir().join(format!("dcperf-hook-move-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("ts.json");
        std::fs::write(&src, "{}").unwrap();
        let dest = dir.join("runs");
        let mut hook = CopyMoveHook::r#move(vec![src.clone()], dest.clone());
        let _ = hook.on_stop();
        assert!(!src.exists(), "move must remove the source");
        assert!(dest.join("ts.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn topdown_hook_forwards_provider_samples() {
        let mut hook = TopdownHook::new(Box::new(|| {
            vec![
                ("topdown_frontend".into(), 33.0),
                ("topdown_retiring".into(), 45.0),
            ]
        }));
        let samples = hook.sample();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].0, "topdown_frontend");
        assert_eq!(samples[0].2, 33.0);
    }

    #[test]
    fn power_hook_uses_provider_fallback() {
        let mut hook =
            PowerHook::with_provider(Box::new(|| vec![("power_model_watts".into(), 212.5)]));
        hook.on_start();
        let samples = hook.sample();
        assert!(samples
            .iter()
            .any(|(n, _, v)| n == "power_model_watts" && *v == 212.5));
    }
}
