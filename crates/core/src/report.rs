//! Benchmark result reports and their JSON serialization.
//!
//! DCPerf "reports the benchmark parameters and results, along with key
//! information about the system being tested … Individual benchmark results
//! are stored in JSON format, allowing automation scripts to process them
//! further" (§3.1). [`BenchmarkReport`] is that JSON document.

use crate::benchmark::RunContext;
use crate::hooks::HookReport;
use crate::sysinfo::SystemInfo;
use dcperf_telemetry::TelemetrySnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A single reported metric value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum MetricValue {
    /// A floating-point measurement (throughput, latency, ratio, …).
    Float(f64),
    /// An integral measurement (counts).
    Int(i64),
    /// A textual annotation (configuration echo, pass/fail, …).
    Text(String),
}

impl MetricValue {
    /// The value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            MetricValue::Float(v) => Some(*v),
            MetricValue::Int(v) => Some(*v as f64),
            MetricValue::Text(_) => None,
        }
    }
}

impl From<f64> for MetricValue {
    fn from(v: f64) -> Self {
        MetricValue::Float(v)
    }
}

impl From<i64> for MetricValue {
    fn from(v: i64) -> Self {
        MetricValue::Int(v)
    }
}

impl From<u64> for MetricValue {
    fn from(v: u64) -> Self {
        MetricValue::Int(v as i64)
    }
}

impl From<&str> for MetricValue {
    fn from(v: &str) -> Self {
        MetricValue::Text(v.to_owned())
    }
}

impl From<String> for MetricValue {
    fn from(v: String) -> Self {
        MetricValue::Text(v)
    }
}

/// The result document produced by one benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Echo of the parameters the benchmark ran with.
    pub parameters: BTreeMap<String, MetricValue>,
    /// Application-level results (throughput, latency percentiles, …).
    pub metrics: BTreeMap<String, MetricValue>,
    /// Host description.
    pub system: SystemInfo,
    /// Hook outputs collected during the run.
    pub hooks: Vec<HookReport>,
    /// Wall-clock duration of the measured phase, in seconds.
    pub duration_secs: f64,
    /// Uniform metrics snapshot of the run's telemetry registry: every
    /// counter, gauge, latency digest (p50/p95/p99/p99.9), and lifecycle
    /// phase timing recorded during the run.
    pub telemetry: TelemetrySnapshot,
}

impl BenchmarkReport {
    /// Looks up a numeric metric.
    pub fn metric_f64(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).and_then(MetricValue::as_f64)
    }

    /// Serializes the report to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns an error if serialization fails (practically impossible for
    /// this type, but surfaced rather than swallowed).
    pub fn to_json(&self) -> Result<String, crate::Error> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns an error if `json` is not a valid report document.
    pub fn from_json(json: &str) -> Result<Self, crate::Error> {
        Ok(serde_json::from_str(json)?)
    }
}

/// Incrementally assembles a [`BenchmarkReport`] while a benchmark runs.
///
/// # Examples
///
/// ```
/// use dcperf_core::{ReportBuilder, RunConfig, RunContext};
///
/// let mut ctx = RunContext::new(RunConfig::smoke_test(), "demo");
/// let mut b = ReportBuilder::new("demo");
/// b.param("threads", 8i64);
/// b.metric("requests_per_second", 1234.5);
/// let report = b.finish(&mut ctx);
/// assert_eq!(report.metric_f64("requests_per_second"), Some(1234.5));
/// ```
#[derive(Debug, Clone)]
pub struct ReportBuilder {
    benchmark: String,
    parameters: BTreeMap<String, MetricValue>,
    metrics: BTreeMap<String, MetricValue>,
    started: std::time::Instant,
}

impl ReportBuilder {
    /// Starts a report for `benchmark`, stamping the start time.
    pub fn new(benchmark: &str) -> Self {
        Self {
            benchmark: benchmark.to_owned(),
            parameters: BTreeMap::new(),
            metrics: BTreeMap::new(),
            started: std::time::Instant::now(),
        }
    }

    /// Records a run parameter.
    pub fn param(&mut self, name: &str, value: impl Into<MetricValue>) -> &mut Self {
        self.parameters.insert(name.to_owned(), value.into());
        self
    }

    /// Records a result metric.
    pub fn metric(&mut self, name: &str, value: impl Into<MetricValue>) -> &mut Self {
        self.metrics.insert(name.to_owned(), value.into());
        self
    }

    /// Records the standard latency metrics from a histogram, in
    /// milliseconds.
    pub fn latency_ms(&mut self, prefix: &str, hist: &dcperf_util::Histogram) -> &mut Self {
        let to_ms = |ns: u64| ns as f64 / 1e6;
        self.metric(&format!("{prefix}_p50_ms"), to_ms(hist.p50()));
        self.metric(&format!("{prefix}_p95_ms"), to_ms(hist.p95()));
        self.metric(&format!("{prefix}_p99_ms"), to_ms(hist.p99()));
        self.metric(&format!("{prefix}_mean_ms"), hist.mean() / 1e6);
        self.metric(&format!("{prefix}_max_ms"), to_ms(hist.max()));
        self
    }

    /// Finalizes the report, stamping duration, host info, and any hook
    /// reports accumulated in the context.
    pub fn finish(self, ctx: &mut RunContext) -> BenchmarkReport {
        BenchmarkReport {
            benchmark: self.benchmark,
            parameters: self.parameters,
            metrics: self.metrics,
            system: ctx.system().clone(),
            hooks: ctx.hooks_mut().drain_reports(),
            duration_secs: self.started.elapsed().as_secs_f64(),
            telemetry: ctx.telemetry().snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::RunConfig;

    fn ctx() -> RunContext {
        RunContext::new(RunConfig::smoke_test(), "test")
    }

    #[test]
    fn metric_value_conversions() {
        assert_eq!(MetricValue::from(1.5).as_f64(), Some(1.5));
        assert_eq!(MetricValue::from(3i64).as_f64(), Some(3.0));
        assert_eq!(MetricValue::from(3u64).as_f64(), Some(3.0));
        assert_eq!(MetricValue::from("x").as_f64(), None);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut ctx = ctx();
        let mut b = ReportBuilder::new("roundtrip");
        b.param("scale", "smoke");
        b.metric("requests_per_second", 99.5);
        b.metric("total_requests", 1000u64);
        let report = b.finish(&mut ctx);
        let json = report.to_json().unwrap();
        let parsed = BenchmarkReport::from_json(&json).unwrap();
        assert_eq!(parsed.benchmark, "roundtrip");
        assert_eq!(parsed.metric_f64("requests_per_second"), Some(99.5));
        assert_eq!(parsed.metric_f64("total_requests"), Some(1000.0));
    }

    #[test]
    fn latency_ms_emits_standard_percentiles() {
        let mut ctx = ctx();
        let mut hist = dcperf_util::Histogram::new();
        for i in 1..=1000u64 {
            hist.record(i * 1_000_000); // 1..=1000 ms in ns
        }
        let mut b = ReportBuilder::new("lat");
        b.latency_ms("request", &hist);
        let report = b.finish(&mut ctx);
        let p95 = report.metric_f64("request_p95_ms").unwrap();
        assert!((900.0..=1000.0).contains(&p95), "p95={p95}");
        assert!(report.metric_f64("request_mean_ms").is_some());
    }

    #[test]
    fn duration_is_positive() {
        let mut ctx = ctx();
        let b = ReportBuilder::new("t");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let report = b.finish(&mut ctx);
        assert!(report.duration_secs > 0.0);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(BenchmarkReport::from_json("{not json").is_err());
    }
}
