//! Normalized scoring.
//!
//! "The score of an individual benchmark is defined as its application
//! metric (such as RPS) normalized to that on SKU1" and "DCPerf reports the
//! overall score, which is the geometric mean of all benchmark's scores"
//! (§3.1/§4.1). [`BaselineTable`] plays the role of the calibrated baseline
//! machine; [`ScoreCard`] holds the normalized results.

use dcperf_util::geometric_mean;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The baseline machine's metric values, keyed by benchmark name.
///
/// A score of 1.0 means "performs like the baseline machine".
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BaselineTable {
    entries: BTreeMap<String, BaselineEntry>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BaselineEntry {
    metric: String,
    value: f64,
}

impl BaselineTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the baseline for `benchmark`: the `metric` name to score on and
    /// the baseline machine's `value` for it.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite and positive — a baseline of zero
    /// would make every score infinite.
    pub fn set(&mut self, benchmark: &str, metric: &str, value: f64) {
        assert!(
            value.is_finite() && value > 0.0,
            "baseline for '{benchmark}' must be finite and positive, got {value}"
        );
        self.entries.insert(
            benchmark.to_owned(),
            BaselineEntry {
                metric: metric.to_owned(),
                value,
            },
        );
    }

    /// Returns the `(metric, value)` baseline for `benchmark`, if set.
    pub fn get(&self, benchmark: &str) -> Option<(&str, f64)> {
        self.entries
            .get(benchmark)
            .map(|e| (e.metric.as_str(), e.value))
    }

    /// Computes `measured / baseline` for `benchmark`. Returns `None` when
    /// no baseline is registered.
    pub fn score(&self, benchmark: &str, measured: f64) -> Option<f64> {
        self.get(benchmark).map(|(_, base)| measured / base)
    }

    /// Number of registered baselines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Normalized per-benchmark scores plus the suite-level geometric mean.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScoreCard {
    scores: BTreeMap<String, f64>,
}

impl ScoreCard {
    /// Creates an empty score card.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a benchmark's normalized score.
    pub fn insert(&mut self, benchmark: &str, score: f64) {
        self.scores.insert(benchmark.to_owned(), score);
    }

    /// A benchmark's score, if recorded.
    pub fn get(&self, benchmark: &str) -> Option<f64> {
        self.scores.get(benchmark).copied()
    }

    /// Iterates `(benchmark, score)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.scores.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The overall score: geometric mean of all recorded scores, or 0.0
    /// when empty.
    pub fn overall(&self) -> f64 {
        let values: Vec<f64> = self.scores.values().copied().collect();
        geometric_mean(&values).unwrap_or(0.0)
    }

    /// Number of scored benchmarks.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether no scores are recorded.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_is_ratio_to_baseline() {
        let mut t = BaselineTable::new();
        t.set("taobench", "requests_per_second", 200.0);
        assert_eq!(t.score("taobench", 300.0), Some(1.5));
        assert_eq!(t.score("unknown", 300.0), None);
        assert_eq!(t.get("taobench"), Some(("requests_per_second", 200.0)));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_baseline_rejected() {
        BaselineTable::new().set("x", "m", 0.0);
    }

    #[test]
    fn overall_is_geomean() {
        let mut card = ScoreCard::new();
        card.insert("a", 1.0);
        card.insert("b", 4.0);
        assert!((card.overall() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_card_scores_zero() {
        assert_eq!(ScoreCard::new().overall(), 0.0);
    }

    #[test]
    fn card_iterates_in_name_order() {
        let mut card = ScoreCard::new();
        card.insert("zeta", 2.0);
        card.insert("alpha", 1.0);
        let names: Vec<&str> = card.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn baseline_table_round_trips_json() {
        let mut t = BaselineTable::new();
        t.set("feedsim", "requests_per_second", 42.0);
        let json = serde_json::to_string(&t).unwrap();
        let back: BaselineTable = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
